// Package server implements cnnperfd, the long-lived prediction
// serving daemon: an HTTP/JSON front end over the analysis pipeline
// that amortizes the compiled-DCA and analysis-cache work of the CLI
// across requests.
//
// Endpoints:
//
//	POST /v1/predict  CNN spec or raw PTX in, per-GPU IPC predictions out
//	POST /v1/lint     PTXA static-analysis diagnostics
//	GET  /healthz     liveness probe
//	GET  /metrics     expvar-style JSON counters
//
// The server owns one process-wide analysis cache and one bounded
// worker pool; concurrent predictions are coalesced into bounded
// analysis batches (see batch.go). Every request gets a deadline, a
// bounded body, and a structured error envelope; shutdown drains
// in-flight requests while late arrivals get 503.
package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/artifactstore"
	"cnnperf/internal/core"
	"cnnperf/internal/obs"
	"cnnperf/internal/parallel"
)

// Config collects the daemon knobs.
type Config struct {
	// Addr is the listen address (default ":8077").
	Addr string
	// Workers sizes the shared analysis worker pool (<= 0 selects
	// GOMAXPROCS).
	Workers int
	// CacheSize bounds the analysis cache entry count (<= 0 means
	// unbounded).
	CacheSize int
	// Timeout is the per-request (and per-batch) deadline (default 60s).
	Timeout time.Duration
	// MaxBodyBytes bounds the request body (default 1 MiB).
	MaxBodyBytes int64
	// BatchWindow is how long the batcher waits to coalesce concurrent
	// predictions into one analysis batch (default 2ms).
	BatchWindow time.Duration
	// MaxBatch bounds the number of requests coalesced into one batch
	// (default 16).
	MaxBatch int
	// PTXMaxSteps bounds the abstract execution of each thread of a raw
	// PTX payload, capping adversarial inputs (default 5M steps).
	PTXMaxSteps int64
	// Pipeline overrides the analysis pipeline configuration; nil
	// selects core.DefaultConfig(). Workers and Cache are always
	// overwritten with the server-owned pool size and cache.
	Pipeline *core.Config
	// Logger receives structured access and error logs; nil disables
	// logging (every log call is a no-op).
	Logger *obs.Logger
	// SlowRequest is the latency above which a completed request is
	// logged at warn level (and counted); <= 0 disables the check.
	SlowRequest time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Profile
	// captures are exempt from the request timeout (a 30s CPU profile
	// must outlive a 10s deadline) but still gated by draining.
	EnablePprof bool
	// StoreDir roots the persistent artifact store: a write-through
	// disk tier under the analysis cache that survives restarts. Empty
	// disables persistence. Only NewWithStore honours this field.
	StoreDir string
	// SnapshotFile pre-loads a `cnnperf store export` snapshot into the
	// disk tier's read-only overlay, so a replica boots warm without a
	// local store directory. May be combined with StoreDir (the store
	// is probed first). Only NewWithStore honours this field.
	SnapshotFile string
	// DisableFlightRecorder turns off the always-on trace capture. The
	// recorder is on by default: every /v1/predict and /v1/lint request
	// is traced into a pooled tracer and tail-retained (errors, slow
	// requests, a reservoir sample) for GET /debug/flightrecorder.
	DisableFlightRecorder bool
	// FlightRecorder tunes the trace capture (zero values select the
	// obs.FlightRecorderConfig defaults; Process defaults to "replica").
	FlightRecorder obs.FlightRecorderConfig
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8077"
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.PTXMaxSteps <= 0 {
		c.PTXMaxSteps = 5_000_000
	}
	return c
}

// Server is the daemon state: one analysis cache, one worker pool, one
// batcher, and the serving telemetry. Construct with New, serve its
// Handler, and stop it with Drain then Close.
type Server struct {
	cfg      Config
	pipeline core.Config
	cache    *analysiscache.Cache
	pool     *parallel.Pool
	batcher  *batcher
	metrics  *metrics
	gate     *drainGate
	fr       *obs.FlightRecorder
	handler  http.Handler
	// tier is the persistent artifact tier under the cache; nil unless
	// constructed with NewWithStore and a StoreDir or SnapshotFile.
	tier *artifactstore.Tier

	// baseCtx outlives any single request: batch analyses run under it
	// so a departed client cannot cancel work that will be cached for
	// the next caller. Close cancels it.
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// New builds a server from cfg (zero values select defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	pipeline := core.DefaultConfig()
	if cfg.Pipeline != nil {
		pipeline = *cfg.Pipeline
	}
	cache := analysiscache.New(cfg.CacheSize)
	pipeline.Cache = cache
	pipeline.Workers = 1 // the pool provides the fan-out; keep units serial inside
	ctx, cancel := context.WithCancel(context.Background())
	pool := parallel.NewPool(cfg.Workers)
	s := &Server{
		cfg:        cfg,
		pipeline:   pipeline,
		cache:      cache,
		pool:       pool,
		metrics:    newMetrics(cache, pool),
		gate:       newDrainGate(),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	if !cfg.DisableFlightRecorder {
		frCfg := cfg.FlightRecorder
		if frCfg.Process == "" {
			frCfg.Process = "replica"
		}
		s.fr = obs.NewFlightRecorder(frCfg)
		s.fr.RegisterMetrics(s.metrics.reg)
	}
	s.batcher = newBatcher(s, cfg.BatchWindow, cfg.MaxBatch)
	s.handler = s.middleware(s.routes())
	return s
}

// FlightRecorder returns the always-on trace capture, or nil when
// disabled.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.fr }

// NewWithStore builds a server and attaches the persistent artifact
// tier described by cfg.StoreDir and cfg.SnapshotFile: cache misses
// probe the disk store (then the snapshot overlay) before computing,
// and computed artifacts are written through. With neither field set
// it is equivalent to New. Store problems are construction errors —
// a daemon asked to persist must not silently run memory-only.
func NewWithStore(cfg Config) (*Server, error) {
	s := New(cfg)
	if cfg.StoreDir == "" && cfg.SnapshotFile == "" {
		return s, nil
	}
	var store *artifactstore.Store
	if cfg.StoreDir != "" {
		var err error
		store, err = artifactstore.Open(cfg.StoreDir)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("server: opening artifact store: %w", err)
		}
	}
	tier, err := core.NewArtifactTier(store)
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("server: building artifact tier: %w", err)
	}
	tier.SetBaseContext(s.baseCtx)
	if cfg.SnapshotFile != "" {
		n, err := tier.LoadSnapshotFile(cfg.SnapshotFile)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("server: loading snapshot: %w", err)
		}
		s.cfg.Logger.Info("snapshot loaded",
			obs.String("file", cfg.SnapshotFile), obs.Int("records", n))
	}
	s.tier = tier
	s.cache.SetSecondTier(tier)
	s.metrics.registerStore(tier)
	return s, nil
}

// ArtifactTier returns the persistent artifact tier, or nil when the
// server runs memory-only.
func (s *Server) ArtifactTier() *artifactstore.Tier { return s.tier }

// Handler returns the fully-wrapped HTTP handler (routing, draining,
// body bounds, deadlines, metrics, panic recovery).
func (s *Server) Handler() http.Handler { return s.handler }

// CacheStats exposes the process-wide analysis-cache counters (the
// same lock-free snapshot /metrics serves).
func (s *Server) CacheStats() analysiscache.Stats { return s.cache.Stats() }

// MetricsSnapshot returns the same telemetry document /metrics serves,
// for in-process callers (tests, embedding programs).
func (s *Server) MetricsSnapshot() Snapshot { return s.metrics.snapshot(s.cache.Stats()) }

// ListenAndServe serves until ctx is cancelled, then drains: new
// requests get 503 while in-flight ones finish (bounded by the request
// timeout plus a grace second), and the listener shuts down cleanly.
func (s *Server) ListenAndServe(ctx context.Context) error {
	httpSrv := &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.Timeout+time.Second)
	defer cancel()
	derr := s.Drain(drainCtx)
	serr := httpSrv.Shutdown(drainCtx)
	s.Close()
	if derr != nil {
		return derr
	}
	return serr
}

// Drain stops admitting requests (they get 503) and waits until every
// in-flight request has completed or ctx expires.
func (s *Server) Drain(ctx context.Context) error { return s.gate.drain(ctx) }

// Close releases the worker pool and cancels any in-flight batch work.
// Call after Drain; requests arriving later are rejected by the gate.
func (s *Server) Close() {
	s.baseCancel()
	s.batcher.close()
	s.pool.Close()
}

// drainGate admits requests until draining begins, then reports idle
// once the in-flight count reaches zero. A plain mutex-and-channel
// design (rather than a WaitGroup) keeps enter/drain free of the
// Add-after-Wait race.
type drainGate struct {
	mu       sync.Mutex
	draining bool
	inflight int
	idle     chan struct{}
}

func newDrainGate() *drainGate {
	return &drainGate{idle: make(chan struct{})}
}

// enter admits one request; false once draining has begun.
func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

// exit retires one admitted request.
func (g *drainGate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.draining && g.inflight == 0 {
		select {
		case <-g.idle:
		default:
			close(g.idle)
		}
	}
}

// drain flips the gate shut and waits for in-flight requests.
func (g *drainGate) drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	if g.inflight == 0 {
		select {
		case <-g.idle:
		default:
			close(g.idle)
		}
	}
	g.mu.Unlock()
	select {
	case <-g.idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// statusWriter captures the response status for metrics and guards the
// panic-recovery path against double WriteHeader.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.wrote = true
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func endpointOf(path string) string {
	switch path {
	case "/v1/predict":
		return "predict"
	case "/v1/lint":
		return "lint"
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	}
	if path == "/debug/flightrecorder" {
		return "flightrecorder"
	}
	if strings.HasPrefix(path, "/debug/pprof") {
		return "pprof"
	}
	return "other"
}

// requestID resolves the request id: an inbound X-Request-ID is
// honoured when it is a reasonable token, otherwise a fresh id is
// generated. The id is echoed on the response either way.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); validRequestID(id) {
		return id
	}
	return obs.NewRequestID()
}

// validRequestID bounds inbound ids so a hostile header cannot inject
// log or header content: 1-64 chars of [A-Za-z0-9._-].
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// middleware wraps the routes with the cross-cutting request policy:
// drain gating, request-id propagation, in-flight accounting, body
// bounds, per-request deadline, latency/status metrics, access and
// slow-request logging, and panic containment.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := endpointOf(r.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		rid := requestID(r)
		sw.Header().Set("X-Request-ID", rid)
		ctx := obs.WithRequestID(r.Context(), rid)
		r = r.WithContext(ctx)
		if !s.gate.enter() {
			s.metrics.rejected.Inc()
			sw.Header().Set("Retry-After", "1")
			writeError(ctx, sw, http.StatusServiceUnavailable, "draining", "server is shutting down")
			return
		}
		defer s.gate.exit()
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		start := time.Now()
		// The flight recorder traces every predict/lint request into a
		// pooled tracer; the root span adopts an inbound traceparent so
		// the local span forest hangs off the caller's (gateway's) trace.
		var frt *obs.Tracer
		var root *obs.Span
		if s.fr != nil && (ep == "predict" || ep == "lint") {
			frt = s.fr.StartRequest()
			fctx := obs.WithTracer(r.Context(), frt)
			if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
				if tc, err := obs.ParseTraceparent(tp); err == nil {
					fctx = obs.WithRemoteParent(fctx, tc)
				}
			}
			fctx, root = obs.Start(fctx, "srv."+ep, obs.String("request_id", rid))
			r = r.WithContext(fctx)
		}
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Inc()
				s.cfg.Logger.ErrorCtx(ctx, "handler panic",
					obs.String("endpoint", ep), obs.String("path", r.URL.Path),
					obs.String("panic", fmt.Sprint(p)))
				if !sw.wrote {
					writeError(ctx, sw, http.StatusInternalServerError, "internal", fmt.Sprintf("internal error: %v", p))
				}
			}
			dur := time.Since(start)
			s.metrics.record(ep, sw.status, dur)
			s.cfg.Logger.InfoCtx(ctx, "request",
				obs.String("method", r.Method), obs.String("path", r.URL.Path),
				obs.String("endpoint", ep), obs.Int("status", sw.status),
				obs.Duration("dur", dur.Round(time.Microsecond)))
			if s.cfg.SlowRequest > 0 && dur > s.cfg.SlowRequest {
				s.metrics.slow.Inc()
				s.cfg.Logger.WarnCtx(ctx, "slow request",
					obs.String("method", r.Method), obs.String("path", r.URL.Path),
					obs.Int("status", sw.status),
					obs.Duration("dur", dur.Round(time.Microsecond)),
					obs.Duration("threshold", s.cfg.SlowRequest))
			}
			if frt != nil {
				root.SetAttr(obs.Int("status", sw.status))
				root.End()
				s.fr.Finish(frt, obs.TraceMeta{
					Endpoint:  ep,
					RequestID: rid,
					Status:    sw.status,
					Err:       sw.status >= 500,
					Duration:  dur,
				})
			}
		}()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		// pprof captures run as long as their ?seconds= argument asks;
		// the request timeout would truncate them, so they are exempt.
		if ep != "pprof" {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(r.Context(), s.cfg.Timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		next.ServeHTTP(sw, r)
	})
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/lint", s.handleLint)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.fr != nil {
		mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	}
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/", s.handleNotFound)
	return mux
}
