package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"cnnperf/internal/core"
	"cnnperf/internal/gpu"
	"cnnperf/internal/obs"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxanalysis"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

// PredictRequest is the /v1/predict input: exactly one of Model or PTX,
// plus the target GPUs.
type PredictRequest struct {
	// Model is a zoo model name.
	Model string `json:"model,omitempty"`
	// PTX is raw PTX assembly (alternative to Model).
	PTX string `json:"ptx,omitempty"`
	// TrainableParams supplies the c-predictor for PTX payloads (the
	// Static Analyzer extracts it from a topology; raw assembly has
	// none).
	TrainableParams int64 `json:"trainable_params,omitempty"`
	// GridX and BlockX shape the synthetic launch of PTX kernels.
	GridX  int `json:"grid_x,omitempty"`
	BlockX int `json:"block_x,omitempty"`
	// GPUs are the catalogue ids to predict for.
	GPUs []string `json:"gpus"`
}

// GPUPrediction is one per-GPU estimate.
type GPUPrediction struct {
	GPU     string  `json:"gpu"`
	GPUName string  `json:"gpu_name"`
	IPC     float64 `json:"ipc"`
}

// PredictResponse is the /v1/predict output. It carries only
// deterministic fields (no wall-clock timings), so identical requests
// produce byte-identical responses; latency lives in /metrics. The
// Debug block is the explicit opt-in exception (?debug=1).
type PredictResponse struct {
	Model                string          `json:"model"`
	ExecutedInstructions int64           `json:"executed_instructions"`
	TrainableParams      int64           `json:"trainable_params"`
	Kernels              int             `json:"kernels"`
	Predictions          []GPUPrediction `json:"predictions"`
	// Debug is the per-stage analysis breakdown, present only when the
	// request asked for it with ?debug=1. Deliberately excluded from the
	// default response so byte-identity of predictions holds.
	Debug *PredictDebug `json:"debug,omitempty"`
}

// PredictDebug is the ?debug=1 block: where the analysis time went.
// The stage timings are measured when the analysis is computed; a
// cache-served analysis reports the timings of that original run.
type PredictDebug struct {
	RequestID string       `json:"request_id,omitempty"`
	AnalysisS float64      `json:"analysis_seconds"`
	Stages    []StageDebug `json:"stages"`
}

// StageDebug is one pipeline stage of the debug breakdown.
type StageDebug struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// LintRequest is the /v1/lint input: exactly one of Model or PTX.
type LintRequest struct {
	Model string `json:"model,omitempty"`
	PTX   string `json:"ptx,omitempty"`
}

// LintResponse is the /v1/lint output.
type LintResponse struct {
	Target      string             `json:"target"`
	Diagnostics []ptxanalysis.Diag `json:"diagnostics"`
	ErrorCount  int                `json:"error_count"`
}

// ErrorEnvelope is the structured error body every non-2xx response
// carries.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the machine-readable error payload.
type ErrorBody struct {
	// Code is a stable machine-readable error class.
	Code string `json:"code"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// RequestID correlates the error with the access log line and the
	// X-Request-ID response header.
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(ctx context.Context, w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{
		Code: code, Message: msg, RequestID: obs.RequestID(ctx),
	}})
}

// decodeJSON reads one JSON document from the bounded body, mapping
// oversized bodies to 413 and malformed ones to 400.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(r.Context(), w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(r.Context(), w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
		return false
	}
	return true
}

// writeCtxError maps a context failure to its HTTP status.
func writeCtxError(ctx context.Context, w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(ctx, w, http.StatusGatewayTimeout, "timeout", "request deadline exceeded")
		return
	}
	// Client went away; 499 is the de-facto status for that.
	writeError(ctx, w, 499, "client_closed_request", "client cancelled the request")
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var req PredictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if (req.Model == "") == (req.PTX == "") {
		writeError(ctx, w, http.StatusBadRequest, "bad_request", "exactly one of \"model\" and \"ptx\" is required")
		return
	}
	if len(req.GPUs) == 0 {
		writeError(ctx, w, http.StatusBadRequest, "bad_request", "\"gpus\" must name at least one device")
		return
	}
	for _, id := range req.GPUs {
		if _, err := gpu.Lookup(id); err != nil {
			writeError(ctx, w, http.StatusNotFound, "unknown_gpu", err.Error())
			return
		}
	}
	var unit predictUnit
	if req.Model != "" {
		if !zooHas(req.Model) {
			writeError(ctx, w, http.StatusNotFound, "unknown_model", fmt.Sprintf("zoo: unknown model %q", req.Model))
			return
		}
		unit = modelUnit(req.Model)
	} else {
		if req.GridX < 0 || req.BlockX < 0 || req.GridX > 1024 || req.BlockX > 1024 {
			writeError(ctx, w, http.StatusBadRequest, "bad_request", "grid_x and block_x must be in [0, 1024]")
			return
		}
		if req.TrainableParams < 0 {
			writeError(ctx, w, http.StatusBadRequest, "bad_request", "trainable_params must be non-negative")
			return
		}
		unit = ptxUnit(req.PTX, core.PTXOptions{
			TrainableParams: req.TrainableParams,
			GridX:           req.GridX,
			BlockX:          req.BlockX,
		})
	}
	bctx, bspan := obs.Start(ctx, "srv.batch")
	res, err := s.batcher.submit(bctx, unit)
	bspan.End()
	if err != nil {
		writeCtxError(ctx, w, err)
		return
	}
	if res.err != nil {
		writeUnitError(ctx, w, res.err)
		return
	}
	preds, err := core.PredictAnalyzedContext(ctx, res.est, res.a, req.GPUs)
	if err != nil {
		if ctx.Err() != nil {
			writeCtxError(ctx, w, ctx.Err())
			return
		}
		writeError(ctx, w, http.StatusUnprocessableEntity, "prediction_failed", err.Error())
		return
	}
	out := make([]GPUPrediction, len(preds))
	for i, p := range preds {
		out[i] = GPUPrediction{GPU: p.GPU, GPUName: p.GPUName, IPC: p.IPC}
	}
	resp := PredictResponse{
		Model:                res.a.Name,
		ExecutedInstructions: res.a.Report.Executed,
		TrainableParams:      res.a.Summary.TrainableParams,
		Kernels:              len(res.a.Report.Kernels),
		Predictions:          out,
	}
	if r.URL.Query().Get("debug") == "1" {
		dbg := &PredictDebug{
			RequestID: obs.RequestID(ctx),
			AnalysisS: res.a.DCATime.Seconds(),
		}
		for _, st := range res.a.Stages {
			dbg.Stages = append(dbg.Stages, StageDebug{Stage: st.Stage, Seconds: st.Duration.Seconds()})
		}
		resp.Debug = dbg
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeUnitError classifies an analysis failure: context failures keep
// their timeout semantics, everything else is an unprocessable payload
// (parse errors, lint gate rejections, runaway executions).
func writeUnitError(ctx context.Context, w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeError(ctx, w, http.StatusGatewayTimeout, "timeout", "analysis deadline exceeded")
		return
	}
	writeError(ctx, w, http.StatusUnprocessableEntity, "analysis_failed", err.Error())
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	var req LintRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if (req.Model == "") == (req.PTX == "") {
		writeError(r.Context(), w, http.StatusBadRequest, "bad_request", "exactly one of \"model\" and \"ptx\" is required")
		return
	}
	var (
		target string
		module *ptx.Module
	)
	if req.Model != "" {
		m, err := zoo.Build(req.Model)
		if err != nil {
			writeError(r.Context(), w, http.StatusNotFound, "unknown_model", err.Error())
			return
		}
		prog, err := ptxgen.Compile(m, s.pipeline.PTX)
		if err != nil {
			writeError(r.Context(), w, http.StatusUnprocessableEntity, "compile_failed", err.Error())
			return
		}
		target, module = req.Model, prog.Module
	} else {
		m, err := ptx.Parse(req.PTX)
		if err != nil {
			writeError(r.Context(), w, http.StatusUnprocessableEntity, "invalid_ptx", err.Error())
			return
		}
		target, module = "ptx", m
	}
	diags := ptxanalysis.Lint(module)
	if diags == nil {
		diags = []ptxanalysis.Diag{}
	}
	errs := 0
	for _, d := range diags {
		if d.Severity == ptxanalysis.SevError {
			errs++
		}
	}
	writeJSON(w, http.StatusOK, LintResponse{Target: target, Diagnostics: diags, ErrorCount: errs})
}

// handleFlightRecorder serves the retained traces as one Chrome trace
// document; ?trace=<32-hex id> narrows it to a single distributed
// trace (for `obscheck stitch`).
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.fr.WriteChromeTrace(w, r.URL.Query().Get("trace"))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": len(zoo.Names()),
		"gpus":   len(gpu.IDs()),
	})
}

// handleMetrics content-negotiates the telemetry document: Prometheus
// text exposition when the client asks for it (?format=prometheus, or
// an Accept header naming text/plain or openmetrics), the legacy JSON
// snapshot otherwise. Both views read the same instrument registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = s.metrics.writePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.snapshot(s.cache.Stats()))
}

func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	// A known path reached through the catch-all means the method was
	// wrong (the typed mux patterns only match their own verb).
	switch r.URL.Path {
	case "/v1/predict", "/v1/lint":
		w.Header().Set("Allow", http.MethodPost)
		writeError(r.Context(), w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s requires POST", r.URL.Path))
		return
	case "/healthz", "/metrics":
		w.Header().Set("Allow", http.MethodGet)
		writeError(r.Context(), w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s requires GET", r.URL.Path))
		return
	}
	writeError(r.Context(), w, http.StatusNotFound, "not_found",
		fmt.Sprintf("no route for %s %s", r.Method, r.URL.Path))
}

func zooHas(name string) bool {
	for _, n := range zoo.Names() {
		if n == name {
			return true
		}
	}
	return false
}
