package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"cnnperf/internal/core"
	"cnnperf/internal/obs"
)

// A predictUnit is the analysis work behind one /v1/predict request,
// independent of which GPUs it asks about: the model (or PTX) analysis
// plus the estimator that scores it. Requests naming the same unit
// share one computation.
type predictUnit struct {
	// key content-addresses the unit for coalescing and caching.
	key string
	// model is the zoo model name; empty for raw-PTX units.
	model string
	// src and ptxOpts carry a raw-PTX payload.
	src     string
	ptxOpts core.PTXOptions
}

func modelUnit(name string) predictUnit {
	return predictUnit{key: "model\x00" + name, model: name}
}

func ptxUnit(src string, opts core.PTXOptions) predictUnit {
	sum := sha256.Sum256([]byte(src))
	key := fmt.Sprintf("ptx\x00%s\x00%d\x00%d\x00%d", hex.EncodeToString(sum[:]),
		opts.TrainableParams, opts.GridX, opts.BlockX)
	return predictUnit{key: key, src: src, ptxOpts: opts}
}

// ContentKey returns the batching dedupe key of a predict request: the
// exact key the server coalesces and caches analyses under. The
// gateway consistent-hashes on it, so every request for one unit of
// work lands on the replica that already holds (or is computing) that
// unit. Requests that fail validation still get a stable key.
func (r PredictRequest) ContentKey() string {
	if r.Model != "" && r.PTX == "" {
		return modelUnit(r.Model).key
	}
	return ptxUnit(r.PTX, core.PTXOptions{
		TrainableParams: r.TrainableParams,
		GridX:           r.GridX,
		BlockX:          r.BlockX,
	}).key
}

// ContentKey returns the routing key of a lint request. Lint work is
// not batched, but keying by the same content identity gives lint
// requests the same replica affinity (and therefore the same warm
// parse/compile caches) as predictions for the same payload.
func (r LintRequest) ContentKey() string {
	if r.Model != "" && r.PTX == "" {
		return "lint\x00model\x00" + r.Model
	}
	sum := sha256.Sum256([]byte(r.PTX))
	return "lint\x00ptx\x00" + hex.EncodeToString(sum[:])
}

// unitResult pairs the memoized analysis with the estimator scoring it.
type unitResult struct {
	est *core.Estimator
	a   *core.ModelAnalysis
	err error
}

// runUnit computes one unit, memoized whole in the process-wide cache:
// repeated identical requests reuse the exact same analysis and
// estimator objects, which is what makes repeated responses
// byte-identical. Concurrent misses on one key share a single
// computation (the cache's singleflight).
func (s *Server) runUnit(ctx context.Context, u predictUnit) unitResult {
	v, _, err := s.cache.GetOrCompute("srv\x00unit\x00"+u.key, func() (any, error) {
		res := s.computeUnit(ctx, u)
		if res.err != nil {
			return nil, res.err
		}
		return res, nil
	})
	if err != nil {
		return unitResult{err: err}
	}
	return v.(unitResult)
}

func (s *Server) computeUnit(ctx context.Context, u predictUnit) unitResult {
	// The estimator is keyed separately: every raw-PTX unit shares the
	// full-inventory estimator, and leave-one-out estimators are shared
	// across repeats after an eviction of the unit entry. The key is the
	// content key of core.EstimatorKey ("est:..."), which routes the
	// trained model through the persistent artifact tier when one is
	// configured — the biggest single cold-start saving.
	exclude := u.model
	estKey := core.EstimatorKey(exclude, s.pipeline)
	ev, _, err := s.cache.GetOrCompute(estKey, func() (any, error) {
		return core.LeaveOneOutEstimatorContext(ctx, exclude, s.pipeline)
	})
	if err != nil {
		return unitResult{err: err}
	}
	var a *core.ModelAnalysis
	if u.model != "" {
		a, err = core.AnalyzeCNNContext(ctx, u.model, s.pipeline)
	} else {
		opts := u.ptxOpts
		opts.MaxSteps = s.cfg.PTXMaxSteps
		a, err = core.AnalyzePTXContext(ctx, u.src, opts, s.pipeline)
	}
	if err != nil {
		return unitResult{err: err}
	}
	return unitResult{est: ev.(*core.Estimator), a: a}
}

// batcher coalesces concurrent predictions into bounded analysis
// batches: the first job in an empty batch opens a short window, and
// the batch executes when the window lapses or MaxBatch jobs have
// joined. One batch deduplicates jobs by unit key and fans the
// distinct units out over the server's shared worker pool, so a burst
// of identical requests costs one analysis and a mixed burst is
// bounded by the pool size, not the request count.
type batcher struct {
	s      *Server
	window time.Duration
	max    int

	mu      sync.Mutex
	pending []*predictJob
	timer   *time.Timer
	closed  bool
}

type predictJob struct {
	unit predictUnit
	done chan unitResult // buffered(1); the batch goroutine never blocks

	// obsCtx carries the submitting request's observability identity
	// (tracer, span, request id). The batch transplants it onto its own
	// context so analysis spans land on the request's trace even though
	// the work runs detached under the server context. tracer is pinned
	// (Acquire) until the job is delivered, so the flight recorder never
	// recycles a tracer the batch still writes into.
	obsCtx context.Context
	tracer *obs.Tracer
}

// release unpins the job's tracer once the batch is done with it.
func (j *predictJob) release() {
	if j.tracer != nil {
		j.tracer.Release()
		j.tracer = nil
	}
	j.obsCtx = nil
}

func newBatcher(s *Server, window time.Duration, max int) *batcher {
	return &batcher{s: s, window: window, max: max}
}

// submit enqueues a unit and waits for its result (or ctx).
func (b *batcher) submit(ctx context.Context, u predictUnit) (unitResult, error) {
	j := &predictJob{unit: u, done: make(chan unitResult, 1)}
	if t := obs.TracerFrom(ctx); t != nil {
		t.Acquire()
		j.tracer = t
		j.obsCtx = ctx
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		j.release()
		return unitResult{}, fmt.Errorf("server: batcher is closed")
	}
	b.pending = append(b.pending, j)
	if len(b.pending) >= b.max {
		batch := b.takeLocked()
		b.mu.Unlock()
		go b.run(batch)
	} else {
		if len(b.pending) == 1 {
			b.timer = time.AfterFunc(b.window, b.flush)
		}
		b.mu.Unlock()
	}
	select {
	case res := <-j.done:
		return res, nil
	case <-ctx.Done():
		// The batch keeps running under the server context; its result
		// lands in the cache for the next caller.
		return unitResult{}, ctx.Err()
	}
}

// flush executes whatever the window collected.
func (b *batcher) flush() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.run(batch)
	}
}

// takeLocked detaches the pending batch; the caller holds the lock.
func (b *batcher) takeLocked() []*predictJob {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// run executes one batch: dedupe by unit key, fan the distinct units
// over the shared pool, deliver every job its unit's result. Units
// fail independently — one bad payload in a batch cannot fail its
// neighbours.
func (b *batcher) run(batch []*predictJob) {
	b.s.metrics.recordBatch(len(batch))
	ctx, cancel := context.WithTimeout(b.s.baseCtx, b.s.cfg.Timeout)
	defer cancel()

	index := make(map[string]int, len(batch))
	var distinct []predictUnit
	var obsCtxs []context.Context
	for _, j := range batch {
		if _, ok := index[j.unit.key]; !ok {
			index[j.unit.key] = len(distinct)
			distinct = append(distinct, j.unit)
			// The first job's trace owns the unit's analysis spans; jobs
			// deduplicated onto the same unit share the result but not
			// the spans (one computation, one recording).
			obsCtxs = append(obsCtxs, j.obsCtx)
		}
	}
	results := make([]unitResult, len(distinct))
	// Errors stay inside their unit's result slot, so ForEach never
	// cancels the batch.
	poolErr := b.s.pool.ForEach(ctx, len(distinct), func(ctx context.Context, i int) error {
		uctx := ctx
		if obsCtxs[i] != nil {
			uctx = obs.Transplant(ctx, obsCtxs[i])
		}
		results[i] = b.s.runUnit(uctx, distinct[i])
		return nil
	})
	for i := range results {
		// A slot a cancelled/closed pool never filled must still carry
		// an error, not a nil estimator.
		if results[i].est == nil && results[i].err == nil {
			err := poolErr
			if err == nil {
				err = fmt.Errorf("server: batch aborted")
			}
			results[i].err = err
		}
	}
	for _, j := range batch {
		j.done <- results[index[j.unit.key]]
		j.release()
	}
}

// close fails any still-pending jobs and refuses new ones. Called
// after the drain gate has emptied, so normally nothing is pending.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	batch := b.takeLocked()
	b.mu.Unlock()
	for _, j := range batch {
		j.done <- unitResult{err: fmt.Errorf("server: shutting down")}
		j.release()
	}
}
