package server_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cnnperf/internal/gpu"
	"cnnperf/internal/server"
)

// newStoreTestServer is newTestServer for the fallible store-backed
// constructor.
func newStoreTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.NewWithStore(cfg)
	if err != nil {
		t.Fatalf("NewWithStore: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		s.Close()
	})
	return s, ts
}

// TestStoreWarmBootByteIdentical is the serving half of the artifact
// store contract: a replica booting against a warmed store directory,
// and a replica booting from a snapshot file alone, both answer
// /v1/predict byte-identically to a cold process — and the store-backed
// replica answers from disk, not by re-training.
func TestStoreWarmBootByteIdentical(t *testing.T) {
	gpus := gpu.TrainingGPUs
	req := `{"model":"mobilenetv2","gpus":["` + gpus[0] + `","` + gpus[1] + `"]}`

	// Cold process: no store, everything computed from scratch.
	_, tsCold := newTestServer(t, server.Config{})
	code, coldBody := postJSON(t, tsCold.URL+"/v1/predict", req)
	if code != http.StatusOK {
		t.Fatalf("cold predict: status %d: %s", code, coldBody)
	}

	// First store-backed replica: computes once, writes through to disk.
	dir := t.TempDir()
	s1, ts1 := newStoreTestServer(t, server.Config{StoreDir: dir})
	code, warmBody := postJSON(t, ts1.URL+"/v1/predict", req)
	if code != http.StatusOK {
		t.Fatalf("warming predict: status %d: %s", code, warmBody)
	}
	if !bytes.Equal(warmBody, coldBody) {
		t.Fatalf("store-backed response differs from cold process:\n cold %s\n warm %s", coldBody, warmBody)
	}
	if st := s1.ArtifactTier().Store().Stats(); st.Puts == 0 {
		t.Fatal("warming replica wrote nothing through to the store")
	}

	// Second replica on the same directory: cold memory, warm disk.
	s2, ts2 := newStoreTestServer(t, server.Config{StoreDir: dir})
	code, diskBody := postJSON(t, ts2.URL+"/v1/predict", req)
	if code != http.StatusOK {
		t.Fatalf("warm-boot predict: status %d: %s", code, diskBody)
	}
	if !bytes.Equal(diskBody, coldBody) {
		t.Fatalf("disk-served response differs from cold process:\n cold %s\n disk %s", coldBody, diskBody)
	}
	if st := s2.ArtifactTier().Store().Stats(); st.Hits == 0 {
		t.Error("warm-boot replica never hit the store")
	}
	if st := s2.CacheStats(); st.DiskHits == 0 {
		t.Error("warm-boot replica's cache records no disk hits")
	}

	// Snapshot-only replica: no store directory at all, one file.
	snap := filepath.Join(t.TempDir(), "store.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ArtifactTier().Store().Export(context.Background(), f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, ts3 := newStoreTestServer(t, server.Config{SnapshotFile: snap})
	code, snapBody := postJSON(t, ts3.URL+"/v1/predict", req)
	if code != http.StatusOK {
		t.Fatalf("snapshot predict: status %d: %s", code, snapBody)
	}
	if !bytes.Equal(snapBody, coldBody) {
		t.Fatalf("snapshot-served response differs from cold process:\n cold %s\n snap %s", coldBody, snapBody)
	}
}
