//go:build race

package server_test

// raceEnabled reports whether the test binary was built with the race
// detector; the heaviest sweeps trim themselves under its ~10x
// instrumentation overhead so `go test -race ./...` stays inside the
// default package timeout.
const raceEnabled = true
