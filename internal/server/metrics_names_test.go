package server_test

// The metric-name audit (one test per surface): every counter, gauge
// and histogram the daemon exports must appear on /metrics under its
// frozen name with its frozen type, and the whole exposition must pass
// ValidatePrometheusText. A rename, a dropped bridge, or a type change
// breaks dashboards silently in production — here it breaks a test.

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"cnnperf/internal/gpu"
	"cnnperf/internal/obs"
	"cnnperf/internal/server"
)

// serverFamilies is the frozen name->type table of every metric family
// a store-backed replica exports. Adding a metric means adding a row;
// renaming or retyping one means consciously editing a frozen row.
var serverFamilies = map[string]string{
	"cnnperfd_requests_total":           "counter",
	"cnnperfd_request_duration_seconds": "histogram",
	"cnnperfd_in_flight_requests":       "gauge",
	"cnnperfd_panics_total":             "counter",
	"cnnperfd_rejected_total":           "counter",
	"cnnperfd_slow_requests_total":      "counter",
	"cnnperfd_batches_total":            "counter",
	"cnnperfd_batch_size":               "histogram",
	"cnnperfd_uptime_seconds":           "gauge",

	"cnnperfd_cache_hits_total":      "counter",
	"cnnperfd_cache_misses_total":    "counter",
	"cnnperfd_cache_waits_total":     "counter",
	"cnnperfd_cache_evictions_total": "counter",
	"cnnperfd_cache_disk_hits_total": "counter",
	"cnnperfd_cache_entries":         "gauge",

	"cnnperfd_pool_workers":               "gauge",
	"cnnperfd_pool_active_workers":        "gauge",
	"cnnperfd_pool_tasks_completed_total": "counter",

	"cnnperfd_absint_iterations": "histogram",

	"cnnperfd_dca_batch_lanes":          "histogram",
	"cnnperfd_dca_batches_total":        "counter",
	"cnnperfd_dca_batch_lanes_total":    "counter",
	"cnnperfd_dca_batch_segments_total": "counter",
	"cnnperfd_dca_batch_splits_total":   "counter",
	"cnnperfd_dca_arena_grows_total":    "counter",
	"cnnperfd_dca_arena_bytes":          "gauge",

	"cnnperfd_store_hits_total":          "counter",
	"cnnperfd_store_misses_total":        "counter",
	"cnnperfd_store_puts_total":          "counter",
	"cnnperfd_store_corrupt_total":       "counter",
	"cnnperfd_store_decode_errors_total": "counter",

	"cnnperfd_fr_requests_total":         "counter",
	"cnnperfd_fr_retained_slow_total":    "counter",
	"cnnperfd_fr_retained_error_total":   "counter",
	"cnnperfd_fr_sampled_total":          "counter",
	"cnnperfd_fr_evictions_total":        "counter",
	"cnnperfd_fr_recycled_tracers_total": "counter",
	"cnnperfd_fr_retained_traces":        "gauge",
	"cnnperfd_fr_retained_spans":         "gauge",
}

func TestMetricsNamesAndTypes(t *testing.T) {
	_, ts := newStoreTestServer(t, server.Config{StoreDir: t.TempDir()})
	// Touch the surfaces so bridged counters have live sources behind
	// them (names must be present regardless of traffic).
	gpus := gpu.TrainingGPUs
	code, body := postJSON(t, ts.URL+"/v1/predict",
		fmt.Sprintf(`{"model":"alexnet","gpus":[%q]}`, gpus[0]))
	if code != http.StatusOK {
		t.Fatalf("predict: status %d: %s", code, body)
	}

	text := scrapePrometheus(t, ts.URL)
	auditFamilies(t, text, serverFamilies)
}

// auditFamilies checks one exposition against a frozen family table:
// validity of the text as a whole, presence and exact TYPE of every
// family, and no unknown cnnperfd families sneaking in unaudited.
func auditFamilies(t *testing.T, text string, families map[string]string) {
	t.Helper()
	if n, err := obs.ValidatePrometheusText(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	} else if n == 0 {
		t.Fatal("exposition has no samples")
	}
	typeOf := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 4 {
			typeOf[fields[2]] = fields[3]
		}
	}
	for family, wantType := range families {
		gotType, ok := typeOf[family]
		if !ok {
			t.Errorf("family %s missing from /metrics", family)
			continue
		}
		if gotType != wantType {
			t.Errorf("family %s is a %s, frozen type is %s", family, gotType, wantType)
		}
	}
	for family, gotType := range typeOf {
		if _, audited := families[family]; !audited {
			t.Errorf("unaudited family %s (%s) on /metrics: add it to the frozen table", family, gotType)
		}
	}
}

func scrapePrometheus(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.PrometheusContentType {
		t.Errorf("scrape content type %q, want %q", got, obs.PrometheusContentType)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestMetricsJSONMirrorsPrometheus pins the drift fix: the JSON
// document exposes the same cache and store counters the Prometheus
// families do — in particular disk_hits and the store section, which
// used to exist only on the Prometheus side.
func TestMetricsJSONMirrorsPrometheus(t *testing.T) {
	_, ts := newStoreTestServer(t, server.Config{StoreDir: t.TempDir()})
	gpus := gpu.TrainingGPUs
	req := fmt.Sprintf(`{"model":"alexnet","gpus":[%q]}`, gpus[0])
	if code, body := postJSON(t, ts.URL+"/v1/predict", req); code != http.StatusOK {
		t.Fatalf("predict: status %d: %s", code, body)
	}

	var doc struct {
		Cache struct {
			Hits     *uint64 `json:"hits"`
			DiskHits *uint64 `json:"disk_hits"`
		} `json:"cache"`
		Store *struct {
			Hits         *uint64 `json:"hits"`
			Misses       *uint64 `json:"misses"`
			Puts         *uint64 `json:"puts"`
			Corrupt      *uint64 `json:"corrupt"`
			DecodeErrors *uint64 `json:"decode_errors"`
		} `json:"store"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &doc); code != http.StatusOK {
		t.Fatalf("metrics JSON: status %d", code)
	}
	if doc.Cache.DiskHits == nil {
		t.Error("JSON cache section is missing disk_hits")
	}
	if doc.Store == nil {
		t.Fatal("JSON document is missing the store section on a store-backed server")
	}
	for name, field := range map[string]*uint64{
		"hits": doc.Store.Hits, "misses": doc.Store.Misses, "puts": doc.Store.Puts,
		"corrupt": doc.Store.Corrupt, "decode_errors": doc.Store.DecodeErrors,
	} {
		if field == nil {
			t.Errorf("JSON store section is missing %s", name)
		}
	}
	if *doc.Store.Puts == 0 {
		t.Error("store puts is 0 after a store-backed predict; the JSON bridge reads the wrong source")
	}

	// A memory-only server must not grow a store section.
	_, tsMem := newTestServer(t, server.Config{})
	var memDoc map[string]any
	if code := getJSON(t, tsMem.URL+"/metrics", &memDoc); code != http.StatusOK {
		t.Fatalf("memory-only metrics JSON: status %d", code)
	}
	if _, has := memDoc["store"]; has {
		t.Error("memory-only server exports a store section")
	}
}
