package server

import (
	"sync/atomic"
	"time"

	"cnnperf/internal/analysiscache"
)

// histogram is a fixed-bucket counting histogram with atomic counters:
// observation is lock-free and a snapshot never blocks the hot path.
type histogram struct {
	bounds []float64      // inclusive upper bounds, ascending
	counts []atomic.Int64 // len(bounds)+1; the last bucket is overflow
	total  atomic.Int64
	sum    atomic.Int64 // sum of observations scaled by sumScale
}

// sumScale keeps fractional observations (latency seconds) meaningful
// in the integer sum: sums are stored in microunits.
const sumScale = 1e6

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := len(h.bounds)
	for b, bound := range h.bounds {
		if v <= bound {
			i = b
			break
		}
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(v * sumScale))
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Mean    float64          `json:"mean"`
	Buckets []BucketSnapshot `json:"buckets"`
}

type BucketSnapshot struct {
	LE    float64 `json:"le"` // +Inf rendered as 0 upper bound omitted
	Count int64   `json:"count"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.total.Load()}
	if s.Count > 0 {
		s.Mean = float64(h.sum.Load()) / sumScale / float64(s.Count)
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, BucketSnapshot{LE: bound, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	s.Buckets = append(s.Buckets, BucketSnapshot{LE: -1, Count: cum}) // -1 = +Inf
	return s
}

// endpointStats aggregates one route's counters.
type endpointStats struct {
	count    atomic.Int64
	status2x atomic.Int64
	status4x atomic.Int64
	status5x atomic.Int64
	latency  *histogram
}

var latencyBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

func newEndpointStats() *endpointStats {
	return &endpointStats{latency: newHistogram(latencyBounds)}
}

func (e *endpointStats) record(status int, d time.Duration) {
	e.count.Add(1)
	switch {
	case status >= 500:
		e.status5x.Add(1)
	case status >= 400:
		e.status4x.Add(1)
	default:
		e.status2x.Add(1)
	}
	e.latency.observe(d.Seconds())
}

type EndpointSnapshot struct {
	Count    int64             `json:"count"`
	ByStatus map[string]int64  `json:"by_status"`
	Latency  HistogramSnapshot `json:"latency_seconds"`
}

func (e *endpointStats) snapshot() EndpointSnapshot {
	return EndpointSnapshot{
		Count: e.count.Load(),
		ByStatus: map[string]int64{
			"2xx": e.status2x.Load(),
			"4xx": e.status4x.Load(),
			"5xx": e.status5x.Load(),
		},
		Latency: e.latency.snapshot(),
	}
}

// metrics is the process-wide serving telemetry, exported as
// expvar-style JSON on /metrics. Every counter is atomic; recording
// adds no locks to the request path.
type metrics struct {
	start      time.Time
	inFlight   atomic.Int64
	panics     atomic.Int64
	rejected   atomic.Int64 // requests refused while draining
	endpoints  map[string]*endpointStats
	batches    atomic.Int64
	batchSizes *histogram
}

var batchBounds = []float64{1, 2, 4, 8, 16, 32}

func newMetrics() *metrics {
	eps := make(map[string]*endpointStats, 5)
	for _, name := range []string{"predict", "lint", "healthz", "metrics", "other"} {
		eps[name] = newEndpointStats()
	}
	return &metrics{start: time.Now(), endpoints: eps, batchSizes: newHistogram(batchBounds)}
}

func (m *metrics) endpoint(name string) *endpointStats {
	if e, ok := m.endpoints[name]; ok {
		return e
	}
	return m.endpoints["other"]
}

func (m *metrics) recordBatch(size int) {
	m.batches.Add(1)
	m.batchSizes.observe(float64(size))
}

// Snapshot is the /metrics JSON document.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	InFlight      int64                       `json:"in_flight"`
	Panics        int64                       `json:"panics"`
	Rejected      int64                       `json:"rejected_draining"`
	Requests      map[string]EndpointSnapshot `json:"requests"`
	Batches       int64                       `json:"batches"`
	BatchSizes    HistogramSnapshot           `json:"batch_sizes"`
	Cache         CacheSnapshot               `json:"cache"`
}

type CacheSnapshot struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

func (m *metrics) snapshot(cs analysiscache.Stats) Snapshot {
	reqs := make(map[string]EndpointSnapshot, len(m.endpoints))
	for name, e := range m.endpoints {
		reqs[name] = e.snapshot()
	}
	return Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      m.inFlight.Load(),
		Panics:        m.panics.Load(),
		Rejected:      m.rejected.Load(),
		Requests:      reqs,
		Batches:       m.batches.Load(),
		BatchSizes:    m.batchSizes.snapshot(),
		Cache: CacheSnapshot{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			HitRate:   cs.HitRate(),
		},
	}
}
