package server

import (
	"io"
	"time"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/artifactstore"
	"cnnperf/internal/dca"
	"cnnperf/internal/obs"
	"cnnperf/internal/parallel"
	"cnnperf/internal/ptxanalysis"
)

// The serving telemetry is a thin façade over an obs.Registry: every
// counter the daemon records lives in one instrument registry that can
// render itself both as the legacy /metrics JSON document (Snapshot)
// and as Prometheus text exposition. Recording stays lock-free; the
// cache and pool counters are bridged in as func metrics evaluated at
// scrape time.

// endpointNames are the pre-registered route labels, so /metrics shows
// every endpoint with zero counts before its first request.
var endpointNames = []string{"predict", "lint", "healthz", "metrics", "flightrecorder", "pprof", "other"}

// statusClasses are the response status classes recorded per endpoint.
var statusClasses = []string{"2xx", "4xx", "5xx"}

var latencyBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

var batchBounds = []float64{1, 2, 4, 8, 16, 32}

// metrics is the process-wide serving telemetry, exported as
// expvar-style JSON and Prometheus text on /metrics.
type metrics struct {
	start time.Time
	reg   *obs.Registry

	requests   *obs.CounterVec   // by endpoint and status class
	latency    *obs.HistogramVec // by endpoint, seconds
	inFlight   *obs.Gauge
	panics     *obs.Counter
	rejected   *obs.Counter // requests refused while draining
	slow       *obs.Counter // requests over the slow-request threshold
	batches    *obs.Counter
	batchSizes *obs.Histogram

	// tier is set by registerStore; nil for memory-only servers. The
	// JSON snapshot mirrors its counters so the two /metrics renderings
	// never drift apart.
	tier *artifactstore.Tier
}

func newMetrics(cache *analysiscache.Cache, pool *parallel.Pool) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		start: time.Now(),
		reg:   reg,
		requests: reg.CounterVec("cnnperfd_requests_total",
			"HTTP requests by endpoint and status class.", "endpoint", "code"),
		latency: reg.HistogramVec("cnnperfd_request_duration_seconds",
			"Request latency by endpoint.", latencyBounds, "endpoint"),
		inFlight: reg.Gauge("cnnperfd_in_flight_requests",
			"Requests currently being served."),
		panics: reg.Counter("cnnperfd_panics_total",
			"Handler panics contained by the recovery middleware."),
		rejected: reg.Counter("cnnperfd_rejected_total",
			"Requests refused while the server was draining."),
		slow: reg.Counter("cnnperfd_slow_requests_total",
			"Requests slower than the configured slow-request threshold."),
		batches: reg.Counter("cnnperfd_batches_total",
			"Coalesced analysis batches executed."),
		batchSizes: reg.Histogram("cnnperfd_batch_size",
			"Number of deduplicated analysis units per batch.", batchBounds),
	}
	// Pre-register every endpoint series so zero counts are visible.
	for _, ep := range endpointNames {
		for _, class := range statusClasses {
			m.requests.With(ep, class)
		}
		m.latency.With(ep)
	}
	reg.GaugeFunc("cnnperfd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(m.start).Seconds() })
	// The analysis cache and worker pool keep their own lock-free
	// counters; bridge them as func metrics read at scrape time.
	reg.CounterFunc("cnnperfd_cache_hits_total", "Analysis cache hits.",
		func() float64 { return float64(cache.Stats().Hits) })
	reg.CounterFunc("cnnperfd_cache_misses_total", "Analysis cache misses.",
		func() float64 { return float64(cache.Stats().Misses) })
	reg.CounterFunc("cnnperfd_cache_waits_total",
		"Cache hits that waited on an in-flight computation (singleflight).",
		func() float64 { return float64(cache.Stats().Waits) })
	reg.CounterFunc("cnnperfd_cache_evictions_total", "Analysis cache evictions.",
		func() float64 { return float64(cache.Stats().Evictions) })
	reg.CounterFunc("cnnperfd_cache_disk_hits_total",
		"Cache misses answered by the persistent artifact tier.",
		func() float64 { return float64(cache.Stats().DiskHits) })
	reg.GaugeFunc("cnnperfd_cache_entries", "Resident analysis cache entries.",
		func() float64 { return float64(cache.Stats().Entries) })
	reg.GaugeFunc("cnnperfd_pool_workers", "Analysis worker pool size.",
		func() float64 { return float64(pool.Size()) })
	reg.GaugeFunc("cnnperfd_pool_active_workers", "Workers currently running a task.",
		func() float64 { return float64(pool.Stats().Active) })
	reg.CounterFunc("cnnperfd_pool_tasks_completed_total", "Pool tasks completed.",
		func() float64 { return float64(pool.Stats().Completed) })
	// Analysis-side instruments (the absint fixpoint-iterations
	// histogram) publish through the same registry.
	ptxanalysis.RegisterMetrics(reg)
	// The batched dca engine keeps its own lock-free counters (it runs
	// on analysis hot paths); bridge them in like the cache and pool.
	dca.RegisterMetrics(reg)
	reg.CounterFunc("cnnperfd_dca_batches_total",
		"Warp-style batched executions issued by the dca engine.",
		func() float64 { return float64(dca.BatchStats().Calls) })
	reg.CounterFunc("cnnperfd_dca_batch_lanes_total",
		"Representative threads executed through the batched engine.",
		func() float64 { return float64(dca.BatchStats().Lanes) })
	reg.CounterFunc("cnnperfd_dca_batch_segments_total",
		"Control-flow segments executed across all batches.",
		func() float64 { return float64(dca.BatchStats().Segments) })
	reg.CounterFunc("cnnperfd_dca_batch_splits_total",
		"Batch splits forced by divergent branches or loop trip counts.",
		func() float64 { return float64(dca.BatchStats().Splits) })
	reg.CounterFunc("cnnperfd_dca_arena_grows_total",
		"Execution arena slab growths (zero once steady state is reached).",
		func() float64 { return float64(dca.BatchStats().ArenaGrows) })
	reg.GaugeFunc("cnnperfd_dca_arena_bytes",
		"High-water retained footprint of the largest execution arena.",
		func() float64 { return float64(dca.BatchStats().ArenaBytes) })
	return m
}

// registerStore bridges the persistent artifact tier's counters once a
// tier is attached (NewWithStore). The store may be nil (snapshot-only
// tier); its counters then read as constant zero.
func (m *metrics) registerStore(tier *artifactstore.Tier) {
	m.tier = tier
	storeStats := func() artifactstore.Stats {
		if st := tier.Store(); st != nil {
			return st.Stats()
		}
		return artifactstore.Stats{}
	}
	m.reg.CounterFunc("cnnperfd_store_hits_total", "Artifact store disk hits.",
		func() float64 { return float64(storeStats().Hits) })
	m.reg.CounterFunc("cnnperfd_store_misses_total", "Artifact store disk misses.",
		func() float64 { return float64(storeStats().Misses) })
	m.reg.CounterFunc("cnnperfd_store_puts_total", "Artifact store records written.",
		func() float64 { return float64(storeStats().Puts) })
	m.reg.CounterFunc("cnnperfd_store_corrupt_total",
		"Corrupt artifact records quarantined by the store.",
		func() float64 { return float64(storeStats().Corrupt) })
	m.reg.CounterFunc("cnnperfd_store_decode_errors_total",
		"Stored artifacts that failed to decode and were recomputed.",
		func() float64 { return float64(tier.DecodeErrors()) })
}

// record counts one served request.
func (m *metrics) record(endpoint string, status int, d time.Duration) {
	class := "2xx"
	switch {
	case status >= 500:
		class = "5xx"
	case status >= 400:
		class = "4xx"
	}
	m.requests.With(endpoint, class).Inc()
	m.latency.With(endpoint).Observe(d.Seconds())
}

func (m *metrics) recordBatch(size int) {
	m.batches.Inc()
	m.batchSizes.Observe(float64(size))
}

// writePrometheus renders the registry in Prometheus text exposition
// format 0.0.4.
func (m *metrics) writePrometheus(w io.Writer) error {
	return m.reg.WritePrometheus(w)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Mean    float64          `json:"mean"`
	Buckets []BucketSnapshot `json:"buckets"`
}

type BucketSnapshot struct {
	LE    float64 `json:"le"` // +Inf rendered as -1
	Count int64   `json:"count"`
}

// jsonHistogram converts an obs histogram snapshot (cumulative buckets,
// last = +Inf) to the legacy JSON shape.
func jsonHistogram(s obs.HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count}
	if s.Count > 0 {
		out.Mean = s.Sum / float64(s.Count)
	}
	for i, bound := range s.Bounds {
		out.Buckets = append(out.Buckets, BucketSnapshot{LE: bound, Count: s.Buckets[i]})
	}
	out.Buckets = append(out.Buckets, BucketSnapshot{LE: -1, Count: s.Count}) // -1 = +Inf
	return out
}

type EndpointSnapshot struct {
	Count    int64             `json:"count"`
	ByStatus map[string]int64  `json:"by_status"`
	Latency  HistogramSnapshot `json:"latency_seconds"`
}

// Snapshot is the /metrics JSON document.
type Snapshot struct {
	UptimeSeconds float64                     `json:"uptime_seconds"`
	InFlight      int64                       `json:"in_flight"`
	Panics        int64                       `json:"panics"`
	Rejected      int64                       `json:"rejected_draining"`
	Requests      map[string]EndpointSnapshot `json:"requests"`
	Batches       int64                       `json:"batches"`
	BatchSizes    HistogramSnapshot           `json:"batch_sizes"`
	Cache         CacheSnapshot               `json:"cache"`
	Store         *StoreSnapshot              `json:"store,omitempty"`
}

type CacheSnapshot struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Waits     uint64  `json:"waits"`
	Evictions uint64  `json:"evictions"`
	DiskHits  uint64  `json:"disk_hits"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// StoreSnapshot is the JSON form of the persistent artifact tier's
// counters; present only on store-backed servers. The field names
// match the cnnperfd_store_* Prometheus families one-for-one.
type StoreSnapshot struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Puts         uint64 `json:"puts"`
	Corrupt      uint64 `json:"corrupt"`
	DecodeErrors uint64 `json:"decode_errors"`
}

func (m *metrics) snapshot(cs analysiscache.Stats) Snapshot {
	reqs := make(map[string]EndpointSnapshot, len(endpointNames))
	for _, ep := range endpointNames {
		by := make(map[string]int64, len(statusClasses))
		total := int64(0)
		for _, class := range statusClasses {
			n := m.requests.With(ep, class).Value()
			by[class] = n
			total += n
		}
		reqs[ep] = EndpointSnapshot{
			Count:    total,
			ByStatus: by,
			Latency:  jsonHistogram(m.latency.With(ep).Snapshot()),
		}
	}
	out := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		InFlight:      int64(m.inFlight.Value()),
		Panics:        m.panics.Value(),
		Rejected:      m.rejected.Value(),
		Requests:      reqs,
		Batches:       m.batches.Value(),
		BatchSizes:    jsonHistogram(m.batchSizes.Snapshot()),
		Cache: CacheSnapshot{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Waits:     cs.Waits,
			Evictions: cs.Evictions,
			DiskHits:  cs.DiskHits,
			Entries:   cs.Entries,
			HitRate:   cs.HitRate(),
		},
	}
	if m.tier != nil {
		var st artifactstore.Stats
		if s := m.tier.Store(); s != nil {
			st = s.Stats()
		}
		out.Store = &StoreSnapshot{
			Hits: st.Hits, Misses: st.Misses, Puts: st.Puts, Corrupt: st.Corrupt,
			DecodeErrors: m.tier.DecodeErrors(),
		}
	}
	return out
}
