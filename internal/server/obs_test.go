package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cnnperf/internal/gpu"
	"cnnperf/internal/obs"
	"cnnperf/internal/server"
	"cnnperf/internal/zoo"
)

// lockedBuffer makes a bytes.Buffer safe to share between the server's
// logger (deferred access-log writes can outlive the response) and the
// test's assertions.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func doRequest(t *testing.T, req *http.Request) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", req.Method, req.URL, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestRequestIDMiddleware covers the three request-ID paths: a valid
// inbound X-Request-ID is honored and echoed, a missing or malformed
// one is replaced with a generated id, and error envelopes carry the
// id so clients can correlate failures with access-log lines.
func TestRequestIDMiddleware(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	t.Run("inbound honored", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		req.Header.Set("X-Request-ID", "client-id_01.A")
		resp, _ := doRequest(t, req)
		if got := resp.Header.Get("X-Request-ID"); got != "client-id_01.A" {
			t.Fatalf("inbound request id not echoed: got %q", got)
		}
	})

	t.Run("generated when absent", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		resp, _ := doRequest(t, req)
		id := resp.Header.Get("X-Request-ID")
		if id == "" {
			t.Fatal("no X-Request-ID generated")
		}
		for _, c := range id {
			switch {
			case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '.', c == '_', c == '-':
			default:
				t.Fatalf("generated id %q has invalid character %q", id, c)
			}
		}
	})

	t.Run("malformed replaced", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		req.Header.Set("X-Request-ID", "spaces are invalid")
		resp, _ := doRequest(t, req)
		id := resp.Header.Get("X-Request-ID")
		if id == "" || id == "spaces are invalid" {
			t.Fatalf("malformed inbound id not replaced: got %q", id)
		}
	})

	t.Run("error envelope carries id", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader("{not json"))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-ID", "err-corr-1")
		resp, raw := doRequest(t, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		var env struct {
			Error struct {
				RequestID string `json:"request_id"`
			} `json:"error"`
		}
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("bad error envelope: %v\n%s", err, raw)
		}
		if env.Error.RequestID != "err-corr-1" {
			t.Fatalf("error envelope request_id = %q, want err-corr-1\n%s", env.Error.RequestID, raw)
		}
	})
}

// TestMetricsContentNegotiation checks that /metrics keeps serving the
// legacy JSON document by default while Accept: text/plain (or the
// ?format=prometheus override) switches to Prometheus text exposition
// that passes the in-tree validator.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	// Default stays JSON so existing scrapers keep working.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	resp, raw := doRequest(t, req)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("default /metrics Content-Type = %q, want application/json", ct)
	}
	if !json.Valid(raw) {
		t.Fatalf("default /metrics is not valid JSON:\n%s", raw)
	}

	for name, mk := range map[string]func() *http.Request{
		"accept header": func() *http.Request {
			r, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
			r.Header.Set("Accept", "text/plain")
			return r
		},
		"format override": func() *http.Request {
			r, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=prometheus", nil)
			return r
		},
	} {
		t.Run(name, func(t *testing.T) {
			resp, raw := doRequest(t, mk())
			if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
				t.Fatalf("Content-Type = %q, want %q", ct, obs.PrometheusContentType)
			}
			n, err := obs.ValidatePrometheusText(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("invalid Prometheus exposition: %v\n%s", err, raw)
			}
			if n == 0 {
				t.Fatal("Prometheus exposition has no samples")
			}
			for _, want := range []string{
				"cnnperfd_requests_total", "cnnperfd_request_duration_seconds_bucket",
				"cnnperfd_cache_hits_total", "cnnperfd_pool_workers", "cnnperfd_uptime_seconds",
				"cnnperfd_absint_iterations",
			} {
				if !strings.Contains(string(raw), want) {
					t.Errorf("exposition missing %s", want)
				}
			}
		})
	}

	// ?format=json wins over the Accept header.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=json", nil)
	req.Header.Set("Accept", "text/plain")
	resp, raw = doRequest(t, req)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("?format=json Content-Type = %q, want application/json", ct)
	}
	if !json.Valid(raw) {
		t.Fatalf("?format=json body is not valid JSON:\n%s", raw)
	}
}

// TestPprofGate verifies the profiling surface is opt-in: absent the
// flag the routes do not exist, with it they serve pprof indexes.
func TestPprofGate(t *testing.T) {
	t.Run("disabled by default", func(t *testing.T) {
		_, ts := newTestServer(t, server.Config{})
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/debug/pprof/", nil)
		resp, _ := doRequest(t, req)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("/debug/pprof/ without -pprof: status %d, want 404", resp.StatusCode)
		}
	})
	t.Run("enabled by flag", func(t *testing.T) {
		_, ts := newTestServer(t, server.Config{EnablePprof: true})
		for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
			req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
			resp, _ := doRequest(t, req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s with -pprof: status %d, want 200", path, resp.StatusCode)
			}
		}
	})
}

// TestObservabilityDeterminism is the guard the golden test relies on:
// turning on every observability feature at once (structured access
// logs at debug level, slow-request warnings on every request, pprof
// routes) must not change a single byte of the prediction response.
// The ?debug=1 block is the one sanctioned exception and must stay
// strictly opt-in.
func TestObservabilityDeterminism(t *testing.T) {
	model := zoo.Names()[0]
	gpuName := gpu.TrainingGPUs[0]
	body := fmt.Sprintf(`{"model":%q,"gpus":[%q]}`, model, gpuName)

	_, plain := newTestServer(t, server.Config{})

	logBuf := &lockedBuffer{}
	_, instrumented := newTestServer(t, server.Config{
		Logger:      obs.NewLogger(logBuf, obs.LevelDebug),
		SlowRequest: time.Nanosecond, // every request trips the slow path
		EnablePprof: true,
	})

	codePlain, rawPlain := postJSON(t, plain.URL+"/v1/predict", body)
	codeInst, rawInst := postJSON(t, instrumented.URL+"/v1/predict", body)
	if codePlain != http.StatusOK || codeInst != http.StatusOK {
		t.Fatalf("predict status: plain=%d instrumented=%d\n%s\n%s", codePlain, codeInst, rawPlain, rawInst)
	}
	if !bytes.Equal(rawPlain, rawInst) {
		t.Fatalf("observability changed the prediction bytes:\nplain:        %s\ninstrumented: %s", rawPlain, rawInst)
	}
	if bytes.Contains(rawInst, []byte(`"debug"`)) {
		t.Fatalf("debug block present without ?debug=1:\n%s", rawInst)
	}

	// ?debug=1 adds the stage breakdown but leaves the prediction
	// fields untouched.
	codeDbg, rawDbg := postJSON(t, instrumented.URL+"/v1/predict?debug=1", body)
	if codeDbg != http.StatusOK {
		t.Fatalf("debug predict status %d\n%s", codeDbg, rawDbg)
	}
	var withDbg struct {
		Predictions json.RawMessage `json:"predictions"`
		Debug       *struct {
			Stages []struct {
				Stage   string  `json:"stage"`
				Seconds float64 `json:"seconds"`
			} `json:"stages"`
		} `json:"debug"`
	}
	if err := json.Unmarshal(rawDbg, &withDbg); err != nil {
		t.Fatalf("bad debug response: %v\n%s", err, rawDbg)
	}
	if withDbg.Debug == nil || len(withDbg.Debug.Stages) == 0 {
		t.Fatalf("?debug=1 returned no stage breakdown:\n%s", rawDbg)
	}
	var plainResp struct {
		Predictions json.RawMessage `json:"predictions"`
	}
	if err := json.Unmarshal(rawPlain, &plainResp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainResp.Predictions, withDbg.Predictions) {
		t.Fatalf("?debug=1 changed prediction values:\nplain: %s\ndebug: %s", plainResp.Predictions, withDbg.Predictions)
	}

	// The instrumented server really did log: access lines with the
	// request id and a slow-request warning.
	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"request"`) {
		t.Errorf("no access log lines emitted:\n%s", logs)
	}
	if !strings.Contains(logs, `"msg":"slow request"`) {
		t.Errorf("no slow-request warning despite 1ns threshold:\n%s", logs)
	}
	if !strings.Contains(logs, `"request_id":`) {
		t.Errorf("access logs missing request_id:\n%s", logs)
	}
}
