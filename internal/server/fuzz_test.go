package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cnnperf/internal/server"
)

// FuzzPredictHandler drives /v1/predict with arbitrary request bodies:
// whatever the payload, the handler must answer with a known status,
// a well-formed JSON body (a PredictResponse on 200, an ErrorEnvelope
// otherwise), and must never panic. The PTX seeds mirror the
// internal/ptx fuzz corpus so the mutator explores the raw-assembly
// analysis path, not just the JSON decoder.
func FuzzPredictHandler(f *testing.F) {
	// Kernel sources lifted from the internal/ptx fuzz seed corpus.
	ptxSeeds := []string{
		testPTX,
		".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p0\n)\n{\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.ne.s32 %p1, %r1, 12;\n@%p1 bra L;\nret;\n}\n",
		".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p0\n)\n{\nmov.u32 %r1, 0;\nL:\nadd.s32 %r1, %r1, 1;\nsetp.gt.s32 %p1, %ntid.x, %r1;\n@%p1 bra L;\nret;\n}\n",
		".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p\n)\n{\nbra missing;\n}\n",
		".version 6.0\n.address_size banana\n",
		"garbage line\n",
		"",
	}
	seeds := []string{
		`{"model":"alexnet","gpus":["gtx1080ti"]}`,
		`{"model":"alexnet","gpus":["gtx1080ti","v100s"]}`,
		`{"model":"nosuchnet","gpus":["gtx1080ti"]}`,
		`{"model":"alexnet","gpus":[]}`,
		`{"model":"alexnet"}`,
		`{"gpus":["gtx1080ti"]}`,
		`{"model":"alexnet","ptx":"ret;","gpus":["gtx1080ti"]}`,
		`{"broken`,
		`[]`,
		`null`,
		`42`,
		`{"model":"alexnet","gpus":["gtx1080ti"],"grid_x":-1}`,
		`{"model":"alexnet","gpus":["gtx1080ti"],"extra":"field"}`,
		strings.Repeat("x", 1<<10),
	}
	for _, src := range ptxSeeds {
		req := server.PredictRequest{PTX: src, GPUs: []string{"v100s"}, GridX: 2, BlockX: 32, TrainableParams: 1000}
		b, err := json.Marshal(req)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, string(b))
	}
	for _, s := range seeds {
		f.Add(s)
	}

	// One shared server for every fuzz iteration, like production: the
	// cache and metrics accumulate across inputs. MaxBatch 1 flushes
	// each submission immediately; the small step budget bounds what a
	// mutated kernel can cost.
	s := server.New(server.Config{
		Workers:      2,
		MaxBatch:     1,
		Timeout:      30 * time.Second,
		MaxBodyBytes: 1 << 16,
		PTXMaxSteps:  10_000,
	})
	f.Cleanup(s.Close)
	h := s.Handler()

	allowed := map[int]bool{
		http.StatusOK: true, http.StatusBadRequest: true, http.StatusNotFound: true,
		http.StatusRequestEntityTooLarge: true, http.StatusUnprocessableEntity: true,
		499: true, http.StatusServiceUnavailable: true, http.StatusGatewayTimeout: true,
	}

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		if !allowed[rec.Code] {
			t.Fatalf("unexpected status %d for body %q: %s", rec.Code, body, rec.Body.Bytes())
		}
		raw := rec.Body.Bytes()
		if rec.Code == http.StatusOK {
			var pr server.PredictResponse
			if err := json.Unmarshal(raw, &pr); err != nil {
				t.Fatalf("200 body is not a PredictResponse: %v: %s", err, raw)
			}
			if len(pr.Predictions) == 0 {
				t.Fatalf("200 body carries no predictions: %s", raw)
			}
		} else {
			var env server.ErrorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("status %d body is not an ErrorEnvelope: %v: %s", rec.Code, err, raw)
			}
			if env.Error.Code == "" || env.Error.Message == "" {
				t.Fatalf("status %d envelope has empty code or message: %s", rec.Code, raw)
			}
		}
		if snap := s.MetricsSnapshot(); snap.Panics != 0 {
			t.Fatalf("handler panicked (%d recovered panics) on body %q", snap.Panics, body)
		}
	})
}
