package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/core"
	"cnnperf/internal/gpu"
	"cnnperf/internal/server"
	"cnnperf/internal/zoo"
)

// newTestServer builds a server plus an httptest front end and tears
// both down (drain, close) with the test.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("GET %s: bad JSON %v\n%s", url, err, raw)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	var body struct {
		Status string `json:"status"`
		Models int    `json:"models"`
		GPUs   int    `json:"gpus"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if body.Status != "ok" || body.Models == 0 || body.GPUs == 0 {
		t.Fatalf("unexpected healthz body: %+v", body)
	}
}

// TestPredictZooGolden serves every zoo model on both training GPUs and
// checks (a) the IPC matches the CLI prediction path (the same core
// entry points `cnnperf predict` calls) bit-for-bit, (b) a repeated
// request returns a byte-identical body, and (c) the second request is
// answered from the cache.
func TestPredictZooGolden(t *testing.T) {
	models := zoo.Names()
	if testing.Short() || raceEnabled {
		// The full-zoo sweep is minutes of work; under the race
		// detector's instrumentation it would blow the package timeout,
		// and the race gate only needs the serving machinery, not every
		// topology.
		models = models[:4]
	}
	gpus := append([]string(nil), gpu.TrainingGPUs...)
	_, ts := newTestServer(t, server.Config{})

	// The expected side runs the exact CLI path with its own cache; the
	// determinism harness guarantees caching does not change results.
	cfg := core.DefaultConfig()
	cfg.Cache = analysiscache.New(0)

	for _, model := range models {
		reqBody := fmt.Sprintf(`{"model":%q,"gpus":["%s","%s"]}`, model, gpus[0], gpus[1])
		code, first := postJSON(t, ts.URL+"/v1/predict", reqBody)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", model, code, first)
		}
		var got server.PredictResponse
		if err := json.Unmarshal(first, &got); err != nil {
			t.Fatalf("%s: bad JSON: %v", model, err)
		}

		ctx := context.Background()
		est, err := core.LeaveOneOutEstimatorContext(ctx, model, cfg)
		if err != nil {
			t.Fatalf("%s: CLI-path estimator: %v", model, err)
		}
		a, err := core.AnalyzeCNNContext(ctx, model, cfg)
		if err != nil {
			t.Fatalf("%s: CLI-path analysis: %v", model, err)
		}
		want, err := core.PredictAnalyzedContext(ctx, est, a, gpus)
		if err != nil {
			t.Fatalf("%s: CLI-path prediction: %v", model, err)
		}
		if got.ExecutedInstructions != a.Report.Executed {
			t.Errorf("%s: executed_instructions %d, CLI path %d",
				model, got.ExecutedInstructions, a.Report.Executed)
		}
		if len(got.Predictions) != len(want) {
			t.Fatalf("%s: %d predictions, want %d", model, len(got.Predictions), len(want))
		}
		for i, p := range got.Predictions {
			if p.GPU != want[i].GPU || p.IPC != want[i].IPC {
				t.Errorf("%s on %s: served IPC %v, CLI path %v (bit-exact required)",
					model, want[i].GPU, p.IPC, want[i].IPC)
			}
			if math.IsNaN(p.IPC) || p.IPC <= 0 {
				t.Errorf("%s on %s: non-positive IPC %v", model, p.GPU, p.IPC)
			}
		}

		code, second := postJSON(t, ts.URL+"/v1/predict", reqBody)
		if code != http.StatusOK {
			t.Fatalf("%s: repeat status %d", model, code)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s: repeated response differs:\n%s\nvs\n%s", model, first, second)
		}
	}
}

// TestPredictSecondRequestHitsCache is the acceptance invariant: on a
// fresh server, the second of two identical requests must be answered
// with cache hits.
func TestPredictSecondRequestHitsCache(t *testing.T) {
	s, ts := newTestServer(t, server.Config{})
	body := `{"model":"alexnet","gpus":["gtx1080ti"]}`
	if code, raw := postJSON(t, ts.URL+"/v1/predict", body); code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", code, raw)
	}
	before := s.CacheStats()
	if code, raw := postJSON(t, ts.URL+"/v1/predict", body); code != http.StatusOK {
		t.Fatalf("second request: status %d: %s", code, raw)
	}
	after := s.CacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("second identical request did not hit the cache: before %+v after %+v", before, after)
	}
	if after.HitRate() <= 0 {
		t.Fatalf("hit rate not positive after repeat: %+v", after)
	}
}

const testPTX = `.version 6.0
.target sm_61
.address_size 64
.visible .entry k(
.param .u64 k_param_0
)
{
mov.u32 %r1, 0;
LOOP:
add.s32 %r1, %r1, 1;
setp.lt.s32 %p1, %r1, 16;
@%p1 bra LOOP;
ret;
}
`

func TestPredictRawPTX(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	req, err := json.Marshal(server.PredictRequest{
		PTX:             testPTX,
		TrainableParams: 1000,
		GPUs:            []string{"gtx1080ti", "v100s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	code, first := postJSON(t, ts.URL+"/v1/predict", string(req))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, first)
	}
	var got server.PredictResponse
	if err := json.Unmarshal(first, &got); err != nil {
		t.Fatal(err)
	}
	if got.ExecutedInstructions <= 0 {
		t.Errorf("executed_instructions = %d, want > 0 (the loop runs 16 times)", got.ExecutedInstructions)
	}
	if got.TrainableParams != 1000 {
		t.Errorf("trainable_params = %d, want 1000", got.TrainableParams)
	}
	if len(got.Predictions) != 2 {
		t.Fatalf("predictions = %d, want 2", len(got.Predictions))
	}
	for _, p := range got.Predictions {
		if p.IPC <= 0 {
			t.Errorf("%s: non-positive IPC %v", p.GPU, p.IPC)
		}
	}
	_, second := postJSON(t, ts.URL+"/v1/predict", string(req))
	if !bytes.Equal(first, second) {
		t.Errorf("repeated PTX response differs:\n%s\nvs\n%s", first, second)
	}
}

func TestPredictErrorEnvelopes(t *testing.T) {
	_, ts := newTestServer(t, server.Config{MaxBodyBytes: 4096})
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"malformed_json", `{"model":`, http.StatusBadRequest, "bad_request"},
		{"empty_body", ``, http.StatusBadRequest, "bad_request"},
		{"neither_model_nor_ptx", `{"gpus":["gtx1080ti"]}`, http.StatusBadRequest, "bad_request"},
		{"both_model_and_ptx", `{"model":"alexnet","ptx":"x","gpus":["gtx1080ti"]}`, http.StatusBadRequest, "bad_request"},
		{"no_gpus", `{"model":"alexnet"}`, http.StatusBadRequest, "bad_request"},
		{"unknown_gpu", `{"model":"alexnet","gpus":["quantum9000"]}`, http.StatusNotFound, "unknown_gpu"},
		{"unknown_model", `{"model":"notanet","gpus":["gtx1080ti"]}`, http.StatusNotFound, "unknown_model"},
		{"bad_grid", `{"ptx":"x","grid_x":99999,"gpus":["gtx1080ti"]}`, http.StatusBadRequest, "bad_request"},
		{"negative_params", `{"ptx":"x","trainable_params":-1,"gpus":["gtx1080ti"]}`, http.StatusBadRequest, "bad_request"},
		{"unparseable_ptx", `{"ptx":"garbage line","gpus":["gtx1080ti"]}`, http.StatusUnprocessableEntity, "analysis_failed"},
		{"oversized_body", `{"ptx":"` + strings.Repeat("x", 8192) + `","gpus":["gtx1080ti"]}`, http.StatusRequestEntityTooLarge, "body_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, raw := postJSON(t, ts.URL+"/v1/predict", tc.body)
			if code != tc.wantCode {
				t.Fatalf("status %d, want %d: %s", code, tc.wantCode, raw)
			}
			var env server.ErrorEnvelope
			if err := json.Unmarshal(raw, &env); err != nil {
				t.Fatalf("error body is not an envelope: %v\n%s", err, raw)
			}
			if env.Error.Code != tc.wantErr {
				t.Errorf("error code %q, want %q (message %q)", env.Error.Code, tc.wantErr, env.Error.Message)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

func TestLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})

	code, raw := postJSON(t, ts.URL+"/v1/lint", `{"model":"alexnet"}`)
	if code != http.StatusOK {
		t.Fatalf("model lint status %d: %s", code, raw)
	}
	var res server.LintResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Target != "alexnet" || res.ErrorCount != 0 {
		t.Fatalf("unexpected model lint result: %+v", res)
	}

	// A kernel reading an undefined register must produce an
	// error-severity diagnostic.
	bad := ".version 6.0\n.target sm_61\n.address_size 64\n.visible .entry k(\n.param .u64 p0\n)\n{\nadd.s32 %r1, %r2, 1;\nret;\n}\n"
	code, raw = postJSON(t, ts.URL+"/v1/lint", `{"ptx":`+mustQuote(bad)+`}`)
	if code != http.StatusOK {
		t.Fatalf("ptx lint status %d: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.ErrorCount == 0 {
		t.Fatalf("use-before-def kernel produced no error diagnostics: %+v", res)
	}

	code, raw = postJSON(t, ts.URL+"/v1/lint", `{"ptx":"garbage line"}`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("unparseable ptx lint status %d: %s", code, raw)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "invalid_ptx" {
		t.Fatalf("unexpected lint error envelope: %v %s", err, raw)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	if code, raw := postJSON(t, ts.URL+"/v1/predict", `{"model":"alexnet","gpus":["gtx1080ti"]}`); code != http.StatusOK {
		t.Fatalf("predict status %d: %s", code, raw)
	}
	postJSON(t, ts.URL+"/v1/predict", `{"bad json`)

	var snap server.Snapshot
	if code := getJSON(t, ts.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	pr := snap.Requests["predict"]
	if pr.Count != 2 || pr.ByStatus["2xx"] != 1 || pr.ByStatus["4xx"] != 1 {
		t.Errorf("predict counters off: %+v", pr)
	}
	if pr.Latency.Count != 2 {
		t.Errorf("latency histogram count %d, want 2", pr.Latency.Count)
	}
	if snap.Cache.Misses == 0 {
		t.Errorf("cache misses = 0 after a cold prediction: %+v", snap.Cache)
	}
	if snap.Batches == 0 {
		t.Errorf("no batches recorded: %+v", snap)
	}
	if snap.Panics != 0 {
		t.Errorf("panics = %d, want 0", snap.Panics)
	}
	if snap.UptimeSeconds <= 0 {
		t.Errorf("uptime %v, want > 0", snap.UptimeSeconds)
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	code, raw := postJSON(t, ts.URL+"/v2/everything", `{}`)
	if code != http.StatusNotFound {
		t.Fatalf("unknown route status %d: %s", code, raw)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "not_found" {
		t.Fatalf("unknown route envelope: %v %s", err, raw)
	}
	var methodEnv server.ErrorEnvelope
	if code := getJSON(t, ts.URL+"/v1/predict", &methodEnv); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict status %d, want 405", code)
	}
	if methodEnv.Error.Code != "method_not_allowed" {
		t.Fatalf("405 envelope code %q", methodEnv.Error.Code)
	}
}

func mustQuote(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(b)
}
