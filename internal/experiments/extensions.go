package experiments

import (
	"fmt"
	"strings"
	"time"

	"cnnperf/internal/core"
	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/gpusim"
	"cnnperf/internal/mlearn"
	"cnnperf/internal/mlearn/dataset"
	"cnnperf/internal/mlearn/metrics"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

// CrossValidation runs k-fold cross-validation of all five regressors
// over the full dataset — a robustness extension beyond the paper's
// single 70/30 split.
func (s *Suite) CrossValidation(k int) (map[string]mlearn.CVResult, string, error) {
	X, y := s.Data.XY()
	factories := map[string]func() mlearn.Regressor{
		"linear_regression": func() mlearn.Regressor { return mlearn.NewLinearRegression() },
		"knn":               func() mlearn.Regressor { return mlearn.NewKNN(3) },
		"random_forest":     func() mlearn.Regressor { return mlearn.NewRandomForest(100, s.Cfg.SplitSeed) },
		"decision_tree":     func() mlearn.Regressor { return mlearn.NewDecisionTree() },
		"xgboost":           func() mlearn.Regressor { return mlearn.NewXGBoost(s.Cfg.SplitSeed) },
	}
	order := []string{"linear_regression", "knn", "random_forest", "decision_tree", "xgboost"}
	out := make(map[string]mlearn.CVResult, len(factories))
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: %d-fold cross-validation over all %d observations\n", k, s.Data.Len())
	fmt.Fprintf(&b, "%-20s %12s %12s %10s\n", "Regression Model", "mean MAPE", "std MAPE", "mean R2")
	for _, name := range order {
		res, err := mlearn.CrossValidate(factories[name], X, y, k, s.Cfg.SplitSeed)
		if err != nil {
			return nil, "", err
		}
		out[name] = res
		fmt.Fprintf(&b, "%-20s %11.2f%% %11.2f%% %10.3f\n", name, res.MeanMAPE, res.StdMAPE, res.MeanR2)
	}
	return out, b.String(), nil
}

// FrequencyScaling runs the DVFS study the paper lists as future work:
// one CNN swept across core clocks on one GPU.
func (s *Suite) FrequencyScaling(model, gpuID string, clocksMHz []float64) ([]gpusim.SweepPoint, string, error) {
	spec, err := gpu.Lookup(gpuID)
	if err != nil {
		return nil, "", err
	}
	a, err := s.analysis(model)
	if err != nil {
		return nil, "", err
	}
	cfg := s.Cfg.Sim
	cfg.NoisePct = -1 // deterministic sweep
	cfg.Workers = s.Cfg.Workers
	points, err := gpusim.FrequencySweep(a.Report, spec, clocksMHz, cfg)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: frequency scaling of %s on %s\n", model, spec.Name)
	fmt.Fprintf(&b, "%10s %12s %12s %14s\n", "clock MHz", "runtime s", "IPC", "mem-bound frac")
	for _, pt := range points {
		fmt.Fprintf(&b, "%10.0f %12.5f %12.1f %14.2f\n",
			pt.ClockMHz, pt.Result.RuntimeSec, pt.Result.IPC, pt.Result.MemoryBoundFraction)
	}
	return points, b.String(), nil
}

// SimulatorComparison reproduces the paper's Section I argument: a
// cycle-level GPGPU simulator reaches 10-20 % accuracy but costs orders
// of magnitude more time than the ML estimator (and than hardware). For
// each model it reports the detailed simulator's IPC deviation from the
// analytic ground truth and the wall-clock cost of simulation, analysis
// and prediction.
func (s *Suite) SimulatorComparison(models []string, gpuID string) (string, error) {
	spec, err := gpu.Lookup(gpuID)
	if err != nil {
		return "", err
	}
	est, err := core.TrainEstimator(s.Train, mlearn.NewDecisionTree())
	if err != nil {
		return "", err
	}
	simCfg := s.Cfg.Sim
	simCfg.NoisePct = -1
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: cycle-level simulator vs ML estimator on %s\n", spec.Name)
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %12s %12s %12s\n",
		"CNN", "truth IPC", "sim IPC", "sim dev", "t_sim", "t_predict", "pred dev")
	for _, name := range models {
		m, err := zoo.Build(name)
		if err != nil {
			return "", err
		}
		prog, err := ptxgen.Compile(m, s.Cfg.PTX)
		if err != nil {
			return "", err
		}
		rep, err := dca.AnalyzeProgram(prog, dca.Options{})
		if err != nil {
			return "", err
		}
		truth, err := gpusim.Simulate(rep, spec, simCfg)
		if err != nil {
			return "", err
		}
		t0 := time.Now()
		det, err := gpusim.SimulateDetailed(prog, rep, spec, simCfg)
		if err != nil {
			return "", err
		}
		tSim := time.Since(t0)
		a, err := s.analysis(name)
		if err != nil {
			return "", err
		}
		pred, err := est.Predict(a, spec)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-14s %10.1f %10.1f %+7.1f%% %12s %12s %+11.1f%%\n",
			name, truth.IPC, det.IPC, 100*(det.IPC-truth.IPC)/truth.IPC,
			tSim.Round(time.Millisecond), est.LastPredictTime(),
			100*(pred-truth.IPC)/truth.IPC)
	}
	b.WriteString("(sim dev within the 10-20% band the paper quotes for GPGPU simulators;\n the estimator answers ~10^6x faster)\n")
	return b.String(), nil
}

// DatasetSizeStudy retrains the Decision Tree with the training split
// enlarged by the zoo's variant set and scores it on the *unchanged*
// evaluation split — testing the paper's closing claim that a larger
// training dataset improves the results.
func (s *Suite) DatasetSizeStudy() (baseMAPE, enlargedMAPE float64, text string, err error) {
	variants, err := zoo.VariantSet()
	if err != nil {
		return 0, 0, "", err
	}
	extra, _, err := core.BuildDatasetFromModels(variants, gpu.TrainingGPUs, s.Cfg)
	if err != nil {
		return 0, 0, "", err
	}
	// Enlarged training set = original train split + all variant rows.
	enlarged := dataset.New(s.Train.FeatureNames)
	enlarged.Rows = append(enlarged.Rows, s.Train.Rows...)
	enlarged.Rows = append(enlarged.Rows, extra.Rows...)

	evX, evY := s.Eval.XY()
	score := func(train *dataset.Dataset) (float64, error) {
		trX, trY := train.XY()
		tree := mlearn.NewDecisionTree()
		if err := tree.Fit(trX, trY); err != nil {
			return 0, err
		}
		return metrics.MAPE(evY, mlearn.PredictAll(tree, evX))
	}
	baseMAPE, err = score(s.Train)
	if err != nil {
		return 0, 0, "", err
	}
	enlargedMAPE, err = score(enlarged)
	if err != nil {
		return 0, 0, "", err
	}
	var b strings.Builder
	b.WriteString("Extension: dataset-size study (paper future work)\n")
	fmt.Fprintf(&b, "Decision Tree on the fixed eval split:\n")
	fmt.Fprintf(&b, "  trained on %3d rows (Table I train split):      MAPE %.2f%%\n", s.Train.Len(), baseMAPE)
	fmt.Fprintf(&b, "  trained on %3d rows (+%d variant observations): MAPE %.2f%%\n",
		enlarged.Len(), extra.Len(), enlargedMAPE)
	return baseMAPE, enlargedMAPE, b.String(), nil
}

// StaticFeatureStudy A/Bs the paper's feature vector against the
// static-analysis-augmented schema (the ptxanalysis predictors: register
// pressure, loop nesting, branch density, instruction-mix and coalescing
// fractions appended), with the same models, GPUs and split seed, and
// reports the eval metrics side by side per regressor.
func (s *Suite) StaticFeatureStudy() (base, static []core.Evaluation, text string, err error) {
	cfg := s.Cfg
	cfg.StaticFeatures = true
	ds, _, err := core.BuildDataset(zoo.TableIOrder, gpu.TrainingGPUs, cfg)
	if err != nil {
		return nil, nil, "", err
	}
	frac := cfg.TrainFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.7
	}
	train, eval, err := ds.Split(frac, cfg.SplitSeed)
	if err != nil {
		return nil, nil, "", err
	}
	static, err = core.EvaluateRegressors(train, eval, core.DefaultRegressors(cfg.SplitSeed))
	if err != nil {
		return nil, nil, "", err
	}
	base, err = core.EvaluateRegressors(s.Train, s.Eval, core.DefaultRegressors(cfg.SplitSeed))
	if err != nil {
		return nil, nil, "", err
	}
	baseBy := map[string]core.Evaluation{}
	for _, e := range base {
		baseBy[e.Name] = e
	}
	var b strings.Builder
	b.WriteString("Extension: static-analysis feature study (paper set vs +ptxanalysis predictors)\n")
	fmt.Fprintf(&b, "%-20s %12s %8s %14s %10s\n",
		"Regression Model", "MAPE (base)", "R2", "MAPE (+static)", "R2")
	for _, e := range static {
		be := baseBy[e.Name]
		fmt.Fprintf(&b, "%-20s %11.2f%% %8.3f %13.2f%% %10.3f\n",
			e.Name, be.MAPE, be.R2, e.MAPE, e.R2)
	}
	fmt.Fprintf(&b, "(static predictors: %s)\n", strings.Join(core.StaticFeatureNames[len(core.FeatureNames):], ", "))
	return base, static, b.String(), nil
}

// BBFeatureStudy A/Bs the paper's feature vector against the schema
// with the per-basic-block aggregates appended (abstract-interpretation
// block features execution-weighted by the DCA per-block visit counts),
// with the same models, GPUs and split seed, and reports the eval
// metrics side by side per regressor.
func (s *Suite) BBFeatureStudy() (base, bb []core.Evaluation, text string, err error) {
	cfg := s.Cfg
	cfg.BBFeatures = true
	ds, _, err := core.BuildDataset(zoo.TableIOrder, gpu.TrainingGPUs, cfg)
	if err != nil {
		return nil, nil, "", err
	}
	frac := cfg.TrainFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.7
	}
	train, eval, err := ds.Split(frac, cfg.SplitSeed)
	if err != nil {
		return nil, nil, "", err
	}
	bb, err = core.EvaluateRegressors(train, eval, core.DefaultRegressors(cfg.SplitSeed))
	if err != nil {
		return nil, nil, "", err
	}
	base, err = core.EvaluateRegressors(s.Train, s.Eval, core.DefaultRegressors(cfg.SplitSeed))
	if err != nil {
		return nil, nil, "", err
	}
	baseBy := map[string]core.Evaluation{}
	for _, e := range base {
		baseBy[e.Name] = e
	}
	var b strings.Builder
	b.WriteString("Extension: basic-block feature study (paper set vs +absint block aggregates)\n")
	fmt.Fprintf(&b, "%-20s %12s %8s %14s %10s\n",
		"Regression Model", "MAPE (base)", "R2", "MAPE (+bb)", "R2")
	for _, e := range bb {
		be := baseBy[e.Name]
		fmt.Fprintf(&b, "%-20s %11.2f%% %8.3f %13.2f%% %10.3f\n",
			e.Name, be.MAPE, be.R2, e.MAPE, e.R2)
	}
	fmt.Fprintf(&b, "(bb predictors: %s)\n", strings.Join(core.BBFeatureNames, ", "))
	return base, bb, b.String(), nil
}

// ExtendedFeatureStudy compares the paper's feature set against the
// future-work schema with FLOPs and MACs added, using the same split
// seed.
func (s *Suite) ExtendedFeatureStudy() (string, error) {
	cfg := s.Cfg
	cfg.ExtendedFeatures = true
	ds, _, err := core.BuildDataset(zoo.TableIOrder, gpu.TrainingGPUs, cfg)
	if err != nil {
		return "", err
	}
	frac := cfg.TrainFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.7
	}
	train, eval, err := ds.Split(frac, cfg.SplitSeed)
	if err != nil {
		return "", err
	}
	extEvals, err := core.EvaluateRegressors(train, eval, core.DefaultRegressors(cfg.SplitSeed))
	if err != nil {
		return "", err
	}
	baseEvals, err := core.EvaluateRegressors(s.Train, s.Eval, core.DefaultRegressors(cfg.SplitSeed))
	if err != nil {
		return "", err
	}
	base := map[string]core.Evaluation{}
	for _, e := range baseEvals {
		base[e.Name] = e
	}
	var b strings.Builder
	b.WriteString("Extension: feature-set study (paper set vs +FLOPs/MACs future work)\n")
	fmt.Fprintf(&b, "%-20s %14s %16s\n", "Regression Model", "MAPE (paper set)", "MAPE (+flops/macs)")
	for _, e := range extEvals {
		fmt.Fprintf(&b, "%-20s %13.2f%% %15.2f%%\n", e.Name, base[e.Name].MAPE, e.MAPE)
	}
	return b.String(), nil
}
