// Package experiments regenerates every table and figure of the paper's
// evaluation: Table I (the CNN inventory), Table II (regressor
// comparison), Table III (feature importances), Fig. 4 (predicted vs
// original IPC for held-out CNNs) and Table IV (DSE time: naive profiling
// vs the proposed estimator). The cmd/experiments binary and the root
// benchmark suite both drive this package.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"cnnperf/internal/analysiscache"
	"cnnperf/internal/cnn"
	"cnnperf/internal/core"
	"cnnperf/internal/gpu"
	"cnnperf/internal/mlearn"
	"cnnperf/internal/mlearn/dataset"
	"cnnperf/internal/mlearn/metrics"
	"cnnperf/internal/profiler"
	"cnnperf/internal/zoo"
)

// Suite holds the shared state of one experimental run: the phase-1
// dataset over the Table I CNNs and training GPUs, its 70/30 split and
// the cached per-CNN analyses.
type Suite struct {
	// Cfg is the pipeline configuration.
	Cfg core.Config
	// Data is the full observation table.
	Data *dataset.Dataset
	// Train and Eval are the frozen 70/30 split.
	Train, Eval *dataset.Dataset
	// Analyses caches the per-CNN analysis by model name.
	Analyses map[string]*core.ModelAnalysis
	// BuildTime is the wall clock spent creating the dataset.
	BuildTime time.Duration
}

// NewSuite builds the phase-1 dataset over all Table I CNNs and the two
// training GPUs, then splits it with the configured seed. When the
// configuration carries no analysis cache, an unbounded one is
// installed: the zoo models share many identical kernel shapes, so the
// suite's repeated dataset builds and per-model analyses hit heavily.
func NewSuite(cfg core.Config) (*Suite, error) {
	if cfg.Cache == nil {
		cfg.Cache = analysiscache.New(0)
	}
	start := time.Now()
	ds, analyses, err := core.BuildDataset(zoo.TableIOrder, gpu.TrainingGPUs, cfg)
	if err != nil {
		return nil, err
	}
	frac := cfg.TrainFrac
	if frac <= 0 || frac >= 1 {
		frac = 0.7
	}
	train, eval, err := ds.Split(frac, cfg.SplitSeed)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Cfg:       cfg,
		Data:      ds,
		Train:     train,
		Eval:      eval,
		Analyses:  analyses,
		BuildTime: time.Since(start),
	}, nil
}

// TableI renders the CNN inventory with the reproduced static-analysis
// columns next to the paper's reference values.
func (s *Suite) TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: CNN models (reproduced static analysis vs paper)\n")
	fmt.Fprintf(&b, "%-19s %-9s %7s %14s %16s %16s %9s\n",
		"Model", "Input", "Layers", "Neurons*", "Params (ours)", "Params (paper)", "dev")
	for _, name := range zoo.TableIOrder {
		ref, _ := zoo.TableI(name)
		m := zoo.MustBuild(name)
		sum, err := cnn.Analyze(m)
		if err != nil {
			fmt.Fprintf(&b, "%-19s ERROR %v\n", name, err)
			continue
		}
		dev := 100 * (float64(sum.TrainableParams) - float64(ref.TrainableParams)) / float64(ref.TrainableParams)
		fmt.Fprintf(&b, "%-19s %-9s %7d %14d %16d %16d %+8.2f%%\n",
			name, sum.Input, sum.Layers, m.ActivationVolume(), sum.TrainableParams, ref.TrainableParams, dev)
	}
	b.WriteString("*Neurons = sum of all layer output elements (the paper's Keras-layer convention).\n")
	return b.String()
}

// CacheStats reports the suite's analysis-cache counters (zero Stats
// when the suite runs uncached).
func (s *Suite) CacheStats() analysiscache.Stats {
	if s.Cfg.Cache == nil {
		return analysiscache.Stats{}
	}
	return s.Cfg.Cache.Stats()
}

// TableII trains the five candidate regressors and returns their
// evaluation rows plus the rendered table.
func (s *Suite) TableII() ([]core.Evaluation, string, error) {
	evals, err := core.EvaluateRegressorsContext(context.Background(),
		s.Train, s.Eval, core.DefaultRegressors(s.Cfg.SplitSeed), s.Cfg.Workers)
	if err != nil {
		return nil, "", err
	}
	// Paper values for side-by-side comparison.
	paper := map[string][3]float64{
		"linear_regression": {8.07, -0.0034, -0.4439},
		"knn":               {5.94, 0.34, 0.08},
		"random_forest":     {7.12, 0.22, -0.12},
		"decision_tree":     {5.73, 0.45, 0.19},
		"xgboost":           {7.59, 0.14, -0.24},
	}
	var b strings.Builder
	b.WriteString("Table II: regression model comparison (ours vs paper)\n")
	fmt.Fprintf(&b, "%-20s %10s %8s %9s   %10s %8s %9s\n",
		"Regression Model", "MAPE", "R2", "adj.R2", "MAPE(pap)", "R2(pap)", "adj(pap)")
	for _, e := range evals {
		p := paper[e.Name]
		fmt.Fprintf(&b, "%-20s %9.2f%% %8.3f %9.3f   %9.2f%% %8.3f %9.3f\n",
			e.Name, e.MAPE, e.R2, e.AdjR2, p[0], p[1], p[2])
	}
	best, err := core.BestByMAPE(evals)
	if err == nil {
		fmt.Fprintf(&b, "Winner: %s (paper: decision_tree)\n", best.Name)
	}
	return evals, b.String(), nil
}

// TableIII trains the final Decision Tree and returns its sorted feature
// importances plus the rendered table.
func (s *Suite) TableIII() ([]core.FeatureImportance, string, error) {
	est, err := core.TrainEstimator(s.Train, mlearn.NewDecisionTree())
	if err != nil {
		return nil, "", err
	}
	imps, err := est.Importances()
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	b.WriteString("Table III: Decision Tree predictor importances (top rows; paper: MemBW 0.726, params 0.260, instr 0.014)\n")
	fmt.Fprintf(&b, "%-24s %12s\n", "Feature", "Importance")
	for _, fi := range imps {
		if fi.Importance < 1e-6 {
			continue
		}
		fmt.Fprintf(&b, "%-24s %12.5f\n", fi.Feature, fi.Importance)
	}
	return imps, b.String(), nil
}

// Fig4Point is one bar pair of the paper's Fig. 4.
type Fig4Point struct {
	// Model is the held-out CNN.
	Model string
	// GPU is the device of the observation.
	GPU string
	// Original is the measured (simulated-profiler) IPC.
	Original float64
	// Predicted is the regressor's estimate.
	Predicted float64
}

// Fig4Series holds predicted-vs-original points for one regressor.
type Fig4Series struct {
	// Regressor is the model name (decision_tree, knn, xgboost,
	// random_forest — the paper's four panels).
	Regressor string
	// Points are the per-CNN comparisons.
	Points []Fig4Point
	// MAPE is the series' error over the shown points.
	MAPE float64
}

// Fig4 reproduces the paper's Fig. 4: predicted vs original IPC for six
// evaluation CNNs (disjoint from training) on the GTX 1080 Ti, for the
// four non-linear regressors.
func (s *Suite) Fig4() ([]Fig4Series, string, error) {
	// Pick up to six eval rows on the 1080 Ti.
	var rows []dataset.Row
	for _, r := range s.Eval.Rows {
		if strings.HasSuffix(r.Tag, "@gtx1080ti") {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Tag < rows[j].Tag })
	if len(rows) > 6 {
		rows = rows[:6]
	}
	if len(rows) == 0 {
		return nil, "", fmt.Errorf("experiments: no 1080Ti rows in the evaluation split")
	}
	trX, trY := s.Train.XY()
	panels := []mlearn.Regressor{
		mlearn.NewDecisionTree(),
		mlearn.NewKNN(3),
		mlearn.NewXGBoost(s.Cfg.SplitSeed),
		mlearn.NewRandomForest(100, s.Cfg.SplitSeed),
	}
	var out []Fig4Series
	var b strings.Builder
	b.WriteString("Fig. 4: predicted vs original IPC for held-out CNNs on GTX 1080 Ti\n")
	for _, reg := range panels {
		if err := reg.Fit(trX, trY); err != nil {
			return nil, "", err
		}
		series := Fig4Series{Regressor: reg.Name()}
		var yT, yP []float64
		for _, r := range rows {
			model := strings.TrimSuffix(r.Tag, "@gtx1080ti")
			pred := reg.Predict(r.X)
			series.Points = append(series.Points, Fig4Point{
				Model: model, GPU: "gtx1080ti", Original: r.Y, Predicted: pred,
			})
			yT = append(yT, r.Y)
			yP = append(yP, pred)
		}
		if m, err := metrics.MAPE(yT, yP); err == nil {
			series.MAPE = m
		}
		out = append(out, series)
		fmt.Fprintf(&b, "(%s)  MAPE %.2f%%\n", reg.Name(), series.MAPE)
		// Find the scale for the bar chart.
		maxIPC := 0.0
		for _, p := range series.Points {
			if p.Original > maxIPC {
				maxIPC = p.Original
			}
			if p.Predicted > maxIPC {
				maxIPC = p.Predicted
			}
		}
		for _, p := range series.Points {
			fmt.Fprintf(&b, "  %-20s original %8.1f %s\n", p.Model, p.Original, bar(p.Original, maxIPC, 40, '#'))
			fmt.Fprintf(&b, "  %-20s predicted%8.1f %s  (%+.1f%%)\n", "",
				p.Predicted, bar(p.Predicted, maxIPC, 40, '='), 100*(p.Predicted-p.Original)/p.Original)
		}
	}
	return out, b.String(), nil
}

// bar renders a proportional ASCII bar of up to width characters.
func bar(v, max float64, width int, ch byte) string {
	if max <= 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat(string(ch), n)
}

// TableIVRow is the timing comparison for one CNN.
type TableIVRow struct {
	// Model is the CNN.
	Model string
	// TP is the simulated nvprof session cost in seconds (t_p).
	TP float64
	// TPM is the measured predictive-model time in seconds (t_pm).
	TPM float64
	// TDCA is the measured dynamic-code-analysis time in seconds (t_dca).
	TDCA float64
	// Naive[n-1] is T_measur for n GPUs.
	Naive [7]float64
	// Ours[n-1] is T_est for n GPUs.
	Ours [7]float64
	// Speedup7 is the speed-up at n = 7.
	Speedup7 float64
}

// tableIVModels are the CNNs of the paper's Table IV.
var tableIVModels = []string{
	"efficientnetb3", "efficientnetb4", "efficientnetb5", "efficientnetb6",
	"efficientnetb7", "xception", "mobilenetv2",
}

// TableIV reproduces the DSE timing comparison: profiling every CNN on n
// GPUs (naive) versus one dynamic code analysis plus n model predictions
// (ours). t_p is the simulated nvprof cost; t_dca and t_pm are measured
// on this machine.
func (s *Suite) TableIV() ([]TableIVRow, string, error) {
	est, err := core.TrainEstimator(s.Train, mlearn.NewDecisionTree())
	if err != nil {
		return nil, "", err
	}
	refGPU, err := gpu.Lookup("gtx1080ti")
	if err != nil {
		return nil, "", err
	}
	pcfg := s.Cfg.Prof
	pcfg.Sim = s.Cfg.Sim
	var rows []TableIVRow
	var b strings.Builder
	b.WriteString("Table IV: DSE time, naive profiling vs proposed estimator (seconds)\n")
	fmt.Fprintf(&b, "%-16s %9s %10s %10s   %10s %10s %9s\n",
		"CNN", "t_p", "t_dca", "t_pm", "naive n=7", "ours n=7", "speedup")
	for _, name := range tableIVModels {
		a, err := s.analysis(name)
		if err != nil {
			return nil, "", err
		}
		prof, err := profiler.RunWithReport(a.Report, refGPU, pcfg)
		if err != nil {
			return nil, "", err
		}
		// t_pm: measure an actual prediction sweep over the 7 GPUs.
		tpmTotal := 0.0
		for _, gid := range gpu.TableIVGPUs {
			spec, err := gpu.Lookup(gid)
			if err != nil {
				return nil, "", err
			}
			if _, err := est.Predict(a, spec); err != nil {
				return nil, "", err
			}
			tpmTotal += est.LastPredictTime().Seconds()
		}
		row := TableIVRow{
			Model: name,
			TP:    prof.ProfilingCostSec,
			TPM:   tpmTotal / float64(len(gpu.TableIVGPUs)),
			TDCA:  a.DCATime.Seconds(),
		}
		for n := 1; n <= 7; n++ {
			d := core.DSETime{N: n, TDCASec: row.TDCA, TPMSec: row.TPM, TPSec: row.TP}
			row.Naive[n-1] = d.Naive()
			row.Ours[n-1] = d.Estimated()
			if n == 7 {
				row.Speedup7 = d.Speedup()
			}
		}
		rows = append(rows, row)
		fmt.Fprintf(&b, "%-16s %9.1f %10.4f %10.2e   %10.1f %10.4f %8.0fx\n",
			name, row.TP, row.TDCA, row.TPM, row.Naive[6], row.Ours[6], row.Speedup7)
	}
	var avg float64
	for _, r := range rows {
		avg += r.Speedup7
	}
	avg /= float64(len(rows))
	fmt.Fprintf(&b, "Average speed-up at n=7: %.0fx (paper: ~33x at n=1 with framework-bound t_dca; see EXPERIMENTS.md)\n", avg)
	return rows, b.String(), nil
}

// analysis returns the cached analysis for a model, creating it if the
// suite's dataset did not include it.
func (s *Suite) analysis(name string) (*core.ModelAnalysis, error) {
	if a, ok := s.Analyses[name]; ok {
		return a, nil
	}
	a, err := core.AnalyzeCNN(name, s.Cfg)
	if err != nil {
		return nil, err
	}
	s.Analyses[name] = a
	return a, nil
}
