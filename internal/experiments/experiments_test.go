package experiments

import (
	"strings"
	"testing"

	"cnnperf/internal/core"
)

// suite is built once for the whole test package (about 6 s of phase-1
// work) and shared by the table tests.
var sharedSuite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment suite skipped in -short mode")
	}
	if sharedSuite == nil {
		s, err := NewSuite(core.DefaultConfig())
		if err != nil {
			t.Fatalf("building suite: %v", err)
		}
		sharedSuite = s
	}
	return sharedSuite
}

func TestSuiteShape(t *testing.T) {
	s := getSuite(t)
	if s.Data.Len() != 62 {
		t.Errorf("dataset rows = %d, want 62", s.Data.Len())
	}
	if s.Train.Len()+s.Eval.Len() != s.Data.Len() {
		t.Error("split does not partition the dataset")
	}
	if len(s.Analyses) != 31 {
		t.Errorf("analyses = %d, want 31", len(s.Analyses))
	}
	if s.BuildTime <= 0 {
		t.Error("build time not measured")
	}
}

func TestTableIOutput(t *testing.T) {
	s := getSuite(t)
	text := s.TableI()
	for _, want := range []string{"vgg16", "efficientnetb7", "138357544", "alexnet"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	if lines := strings.Count(text, "\n"); lines < 33 {
		t.Errorf("Table I too short: %d lines", lines)
	}
}

func TestTableIIOutput(t *testing.T) {
	s := getSuite(t)
	evals, text, err := s.TableII()
	if err != nil {
		t.Fatalf("table II: %v", err)
	}
	if len(evals) != 5 {
		t.Fatalf("evals = %d", len(evals))
	}
	if !strings.Contains(text, "decision_tree") || !strings.Contains(text, "Winner:") {
		t.Errorf("table II text malformed:\n%s", text)
	}
	// The reproduced shape: decision tree beats linear regression.
	var dt, lr float64
	for _, e := range evals {
		switch e.Name {
		case "decision_tree":
			dt = e.MAPE
		case "linear_regression":
			lr = e.MAPE
		}
	}
	if dt >= lr {
		t.Errorf("decision tree (%.2f%%) must beat linear regression (%.2f%%)", dt, lr)
	}
}

func TestTableIIIOutput(t *testing.T) {
	s := getSuite(t)
	imps, text, err := s.TableIII()
	if err != nil {
		t.Fatalf("table III: %v", err)
	}
	if imps[0].Feature != "mem_bandwidth_gbs" {
		t.Errorf("top feature = %s", imps[0].Feature)
	}
	if !strings.Contains(text, "mem_bandwidth_gbs") {
		t.Error("table III text missing bandwidth row")
	}
}

func TestFig4Output(t *testing.T) {
	s := getSuite(t)
	series, text, err := s.Fig4()
	if err != nil {
		t.Fatalf("fig 4: %v", err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d, want 4 panels", len(series))
	}
	names := map[string]bool{}
	for _, sr := range series {
		names[sr.Regressor] = true
		if len(sr.Points) == 0 || len(sr.Points) > 6 {
			t.Errorf("%s: %d points", sr.Regressor, len(sr.Points))
		}
		if sr.MAPE <= 0 {
			t.Errorf("%s: MAPE %f", sr.Regressor, sr.MAPE)
		}
		for _, p := range sr.Points {
			if p.Original <= 0 || p.Predicted <= 0 {
				t.Errorf("%s %s: non-positive IPC", sr.Regressor, p.Model)
			}
		}
	}
	for _, want := range []string{"decision_tree", "knn", "xgboost", "random_forest"} {
		if !names[want] {
			t.Errorf("missing panel %s", want)
		}
	}
	// All panels must show the same CNNs (same held-out rows).
	for _, sr := range series[1:] {
		if len(sr.Points) != len(series[0].Points) {
			t.Fatal("panels show different point counts")
		}
		for i := range sr.Points {
			if sr.Points[i].Model != series[0].Points[i].Model {
				t.Error("panels show different CNNs")
			}
			if sr.Points[i].Original != series[0].Points[i].Original {
				t.Error("original IPC differs between panels")
			}
		}
	}
	if !strings.Contains(text, "predicted") {
		t.Error("fig 4 text malformed")
	}
}

func TestTableIVOutput(t *testing.T) {
	s := getSuite(t)
	rows, text, err := s.TableIV()
	if err != nil {
		t.Fatalf("table IV: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		if r.TP <= 0 || r.TDCA <= 0 || r.TPM < 0 {
			t.Errorf("%s: non-positive timings %+v", r.Model, r)
		}
		// The naive cost scales linearly with n; ours is nearly flat.
		for n := 1; n < 7; n++ {
			if r.Naive[n] <= r.Naive[n-1] {
				t.Errorf("%s: naive cost must grow with n", r.Model)
			}
			if r.Ours[n] < r.Ours[n-1] {
				t.Errorf("%s: estimated cost must not shrink with n", r.Model)
			}
		}
		// The paper's core claim: the estimator is much faster; its
		// average speed-up is 33x, ours is larger because t_dca here is
		// a measured Go runtime, not a Python/TF session.
		if r.Speedup7 < 33 {
			t.Errorf("%s: speed-up %fx below the paper's 33x", r.Model, r.Speedup7)
		}
	}
	// Bigger EfficientNets must cost more to profile.
	for i := 1; i < 5; i++ {
		if rows[i].TP <= rows[i-1].TP {
			t.Errorf("profiling cost must grow with EfficientNet size: %s", rows[i].Model)
		}
	}
	if !strings.Contains(text, "speedup") {
		t.Error("table IV text malformed")
	}
}

func TestCrossValidationExtension(t *testing.T) {
	s := getSuite(t)
	results, text, err := s.CrossValidation(5)
	if err != nil {
		t.Fatalf("cv: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d regressors", len(results))
	}
	for name, res := range results {
		if res.Folds != 5 || res.MeanMAPE <= 0 {
			t.Errorf("%s: %+v", name, res)
		}
	}
	if !strings.Contains(text, "cross-validation") {
		t.Error("text malformed")
	}
}

func TestFrequencyScalingExtension(t *testing.T) {
	s := getSuite(t)
	points, text, err := s.FrequencyScaling("resnet50v2", "gtx1080ti", []float64{1000, 1582})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].Result.RuntimeSec > points[0].Result.RuntimeSec {
		t.Error("higher clock slower")
	}
	if !strings.Contains(text, "frequency scaling") {
		t.Error("text malformed")
	}
	if _, _, err := s.FrequencyScaling("resnet50v2", "voodoo", []float64{1000}); err == nil {
		t.Error("unknown GPU should error")
	}
}

func TestExtendedFeatureStudyExtension(t *testing.T) {
	s := getSuite(t)
	text, err := s.ExtendedFeatureStudy()
	if err != nil {
		t.Fatalf("feature study: %v", err)
	}
	if !strings.Contains(text, "flops") || !strings.Contains(text, "decision_tree") {
		t.Errorf("text malformed:\n%s", text)
	}
}

func TestStaticFeatureStudyExtension(t *testing.T) {
	s := getSuite(t)
	base, static, text, err := s.StaticFeatureStudy()
	if err != nil {
		t.Fatalf("static feature study: %v", err)
	}
	if !strings.Contains(text, "static_reg_pressure") || !strings.Contains(text, "decision_tree") {
		t.Errorf("text malformed:\n%s", text)
	}
	byName := func(evals []core.Evaluation, name string) *core.Evaluation {
		for i := range evals {
			if evals[i].Name == name {
				return &evals[i]
			}
		}
		return nil
	}
	b, st := byName(base, "decision_tree"), byName(static, "decision_tree")
	if b == nil || st == nil {
		t.Fatalf("missing decision_tree row: base %v static %v", base, static)
	}
	// The static predictors must not hurt the winning model: at most one
	// MAPE point worse than the paper's schema.
	if st.MAPE > b.MAPE+1.0 {
		t.Errorf("static features degraded decision-tree MAPE from %.2f%% to %.2f%%", b.MAPE, st.MAPE)
	}
}

func TestBBFeatureStudyExtension(t *testing.T) {
	s := getSuite(t)
	base, bb, text, err := s.BBFeatureStudy()
	if err != nil {
		t.Fatalf("bb feature study: %v", err)
	}
	if !strings.Contains(text, "bb_exec_divergent_frac") || !strings.Contains(text, "decision_tree") {
		t.Errorf("text malformed:\n%s", text)
	}
	byName := func(evals []core.Evaluation, name string) *core.Evaluation {
		for i := range evals {
			if evals[i].Name == name {
				return &evals[i]
			}
		}
		return nil
	}
	lb, lbb := byName(base, "linear_regression"), byName(bb, "linear_regression")
	if lb == nil || lbb == nil {
		t.Fatalf("missing linear_regression row: base %v bb %v", base, bb)
	}
	// The recorded finding (EXPERIMENTS.md): the execution-weighted block
	// aggregates carry real signal — they roughly halve the linear
	// model's error — while the greedy tree learners, already near their
	// floor, pick up variance from the seven extra columns. Pin the
	// signal half so a regression in the aggregation (e.g. weights
	// silently collapsing to 1) shows up as a lost improvement.
	if lbb.MAPE >= lb.MAPE {
		t.Errorf("bb features no longer help linear regression: %.2f%% -> %.2f%%", lb.MAPE, lbb.MAPE)
	}
	if lbb.R2 <= lb.R2 {
		t.Errorf("bb features no longer lift linear R2: %.3f -> %.3f", lb.R2, lbb.R2)
	}
}

func TestDatasetSizeStudyExtension(t *testing.T) {
	s := getSuite(t)
	base, enlarged, text, err := s.DatasetSizeStudy()
	if err != nil {
		t.Fatalf("dataset-size study: %v", err)
	}
	if base <= 0 || enlarged <= 0 {
		t.Errorf("MAPEs %f / %f", base, enlarged)
	}
	// The enlarged training set must not catastrophically hurt; the
	// paper expects improvement, and our frozen seed shows one.
	if enlarged > base*1.5 {
		t.Errorf("variants degraded MAPE from %.2f%% to %.2f%%", base, enlarged)
	}
	if !strings.Contains(text, "dataset-size") {
		t.Error("text malformed")
	}
}

func TestSimulatorComparisonExtension(t *testing.T) {
	s := getSuite(t)
	text, err := s.SimulatorComparison([]string{"mobilenetv2", "squeezenet"}, "gtx1080ti")
	if err != nil {
		t.Fatalf("simulator comparison: %v", err)
	}
	for _, want := range []string{"mobilenetv2", "squeezenet", "sim dev", "t_predict"} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q", want)
		}
	}
	if _, err := s.SimulatorComparison([]string{"nope"}, "gtx1080ti"); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := s.SimulatorComparison([]string{"alexnet"}, "voodoo"); err == nil {
		t.Error("unknown GPU should error")
	}
}
