package gpusim

import (
	"fmt"

	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
)

// The detailed simulator is the "GPGPU simulator" comparison point the
// paper's introduction discusses (GPGPU-Sim class tools): a
// cycle-approximate warp-level model that replays each kernel's dynamic
// instruction trace on a scoreboarded SM with per-class latencies and a
// bounded miss queue. It is far slower than both the analytic model and
// the ML estimator — which is exactly the trade-off the paper's approach
// escapes — and lands within the 10-20 % band of the analytic
// ground truth that the paper quotes for such simulators.

// latencyOf returns the effective issue-to-dependent-issue latency of a
// class in cycles. ALU results forward within a couple of cycles on real
// SMs; global-load latency is supplied per kernel (it depends on the L2
// hit rate), so ClassLoad here is only the fallback.
func latencyOf(c ptx.Class) int {
	switch c {
	case ptx.ClassIntALU, ptx.ClassCompare, ptx.ClassMove, ptx.ClassBranch, ptx.ClassControl:
		return 2
	case ptx.ClassFP32, ptx.ClassFMA:
		return 4
	case ptx.ClassConvert:
		return 6
	case ptx.ClassSFU:
		return 16
	case ptx.ClassLoadShared, ptx.ClassStoreShared:
		return 20
	case ptx.ClassLoad:
		return 350
	case ptx.ClassStore:
		return 4 // write-back, fire and forget
	case ptx.ClassSync:
		return 8
	default:
		return 8
	}
}

// detailedSMConfig fixes the per-SM microarchitecture of the model.
const (
	schedulersPerSM    = 4
	maxResidentWarps   = 64
	maxOutstandingMiss = 96
)

// simulateKernelDetailed replays one warp trace over the resident-warp
// population of an SM and returns the cycles one SM needs for one wave
// of warps. dramCyclesPerLoad is the per-SM DRAM service time of one
// coalesced 128-byte warp load (bandwidth constraint).
func simulateKernelDetailed(trace []ptx.Class, warps int, dramCyclesPerLoad float64, loadLatency int64) float64 {
	if loadLatency <= 0 {
		loadLatency = int64(latencyOf(ptx.ClassLoad))
	}
	if warps <= 0 || len(trace) == 0 {
		return 0
	}
	if warps > maxResidentWarps {
		warps = maxResidentWarps
	}
	pc := make([]int, warps)        // next trace index per warp
	ready := make([]int64, warps)   // cycle at which the warp may issue
	var outstanding int             // in-flight global loads
	missRet := make([]int64, 0, 16) // completion cycles of in-flight loads
	var dramBusy float64            // DRAM channel busy-until cycle

	done := 0
	var cycle int64
	rr := 0
	for done < warps {
		// Retire completed misses.
		kept := missRet[:0]
		for _, c := range missRet {
			if c > cycle {
				kept = append(kept, c)
			} else {
				outstanding--
			}
		}
		missRet = kept

		issued := 0
		for scan := 0; scan < warps && issued < schedulersPerSM; scan++ {
			w := (rr + scan) % warps
			if pc[w] >= len(trace) || ready[w] > cycle {
				continue
			}
			cls := trace[pc[w]]
			if cls == ptx.ClassLoad && outstanding >= maxOutstandingMiss {
				continue // memory queue full: warp stalls
			}
			lat := int64(latencyOf(cls))
			if cls == ptx.ClassLoad {
				lat = loadLatency
			}
			if cls == ptx.ClassLoad || cls == ptx.ClassStore {
				// Serialise on the SM's DRAM bandwidth share: the
				// transaction completes no earlier than the channel
				// frees up.
				start := float64(cycle)
				if dramBusy > start {
					start = dramBusy
				}
				dramBusy = start + dramCyclesPerLoad
				if cls == ptx.ClassLoad {
					complete := int64(dramBusy) + lat
					ready[w] = complete
					outstanding++
					missRet = append(missRet, complete)
				} else {
					ready[w] = cycle + lat
				}
			} else {
				ready[w] = cycle + lat
			}
			pc[w]++
			if pc[w] >= len(trace) {
				done++
			}
			issued++
		}
		rr = (rr + 1) % warps
		cycle++
		// Fast-forward across full stalls: jump to the next ready event.
		if issued == 0 {
			next := int64(1 << 62)
			for w := 0; w < warps; w++ {
				if pc[w] < len(trace) && ready[w] < next && ready[w] > cycle {
					next = ready[w]
				}
			}
			for _, c := range missRet {
				if c < next && c > cycle {
					next = c
				}
			}
			if next < int64(1<<62) && next > cycle {
				cycle = next
			}
		}
	}
	return float64(cycle)
}

// SimulateDetailed runs the cycle-approximate simulation of a compiled
// program on a GPU. It is orders of magnitude slower than Simulate (it
// walks every kernel's trace cycle by cycle) and agrees with it within
// the 10-20 % band the paper quotes for cycle-level simulators.
func SimulateDetailed(prog *ptxgen.Program, rep *dca.Report, spec gpu.Spec, cfg Config) (*Result, error) {
	if prog == nil || rep == nil {
		return nil, fmt.Errorf("gpusim: nil program or report")
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("gpusim: %w", err)
	}
	clock := cfg.ClockMHz
	if clock <= 0 {
		clock = spec.BoostClockMHz
	}
	clockHz := clock * 1e6
	launchOverheadCycles := cfg.launchOverheadUs() * 1e-6 * clockHz
	// Per-SM DRAM service time of one 128-byte coalesced warp access.
	bytesPerCyclePerSM := spec.MemBandwidthGBs * 1e9 / clockHz / float64(spec.SMs)
	l2Bytes := float64(spec.L2CacheKB) * 1024

	res := &Result{Model: prog.Model, GPU: spec.Name, Instructions: rep.Executed}
	for i, l := range prog.Launches {
		k := prog.Module.Kernel(l.Kernel)
		if k == nil {
			return nil, fmt.Errorf("gpusim: unknown kernel %q", l.Kernel)
		}
		// L2-filtered miss ratio of this kernel, as in the analytic
		// model: only DRAM-bound traffic pays the bandwidth cost.
		kr := rep.Kernels[i]
		bytesMoved := 4 * float64(kr.PerClass[ptx.ClassLoad]+kr.PerClass[ptx.ClassStore])
		missRatio := 1.0
		if bytesMoved > 0 {
			missRatio = dramTraffic(bytesMoved, float64(kr.WorkingSetBytes), l2Bytes) / bytesMoved
		}
		dramCyclesPerLoad := 128.0 * missRatio / bytesPerCyclePerSM
		// Load latency blends the L2-hit and DRAM-miss paths.
		loadLatency := int64(60 + missRatio*290)
		trace, err := dca.TraceThread(k, dca.LaunchInfo{BlockX: l.BlockX, GridX: l.GridX, Params: l.Params}, 0, dca.ExecOptions{})
		if err != nil {
			return nil, fmt.Errorf("gpusim: tracing %s: %w", l.Kernel, err)
		}
		totalWarps := (l.Threads + 31) / 32
		// Warps are spread over the SM array; each SM runs waves of up
		// to maxResidentWarps.
		warpsPerSM := (totalWarps + int64(spec.SMs) - 1) / int64(spec.SMs)
		resident := int(warpsPerSM)
		if resident > maxResidentWarps {
			resident = maxResidentWarps
		}
		waveCycles := simulateKernelDetailed(trace, resident, dramCyclesPerLoad, loadLatency)
		_ = k
		waves := float64(warpsPerSM) / float64(maxResidentWarps)
		if waves < 1 {
			waves = 1
		}
		cycles := waveCycles*waves + launchOverheadCycles
		res.Cycles += cycles
		res.Kernels = append(res.Kernels, KernelTiming{
			Kernel: l.Kernel,
			Cycles: cycles,
		})
		_ = i
	}
	if res.Cycles <= 0 {
		return nil, fmt.Errorf("gpusim: detailed simulation produced no cycles")
	}
	res.IPC = float64(res.Instructions) / res.Cycles
	res.RuntimeSec = res.Cycles / clockHz
	return res, nil
}
