package gpusim

import (
	"testing"

	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

func zooReport(b *testing.B, name string) *dca.Report {
	b.Helper()
	m := zoo.MustBuild(name)
	prog, err := ptxgen.Compile(m, ptxgen.Options{Batch: 16})
	if err != nil {
		b.Fatal(err)
	}
	rep, err := dca.AnalyzeProgram(prog, dca.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkSimulate measures a full-model timing simulation per device.
func BenchmarkSimulate(b *testing.B) {
	rep := zooReport(b, "resnet50v2")
	for _, id := range []string{"gtx1080ti", "v100s", "a100"} {
		id := id
		spec := gpu.MustLookup(id)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(rep, spec, Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrequencySweep measures a 7-point DVFS sweep.
func BenchmarkFrequencySweep(b *testing.B) {
	rep := zooReport(b, "mobilenetv2")
	spec := gpu.MustLookup("gtx1080ti")
	clocks := []float64{800, 1000, 1200, 1400, 1582, 1800, 2000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FrequencySweep(rep, spec, clocks, Config{NoisePct: -1}); err != nil {
			b.Fatal(err)
		}
	}
}
