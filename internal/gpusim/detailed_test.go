package gpusim

import (
	"math"
	"testing"
	"time"

	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

// smallProgram compiles a real (small) zoo CNN for detailed-simulation
// tests: the 10-20 % agreement band applies to realistic workloads, not
// to L2-resident toy kernels whose regime the two models bound
// differently.
func smallProgram(t *testing.T) (*ptxgen.Program, *dca.Report) {
	t.Helper()
	m := zoo.MustBuild("squeezenet")
	prog, err := ptxgen.Compile(m, ptxgen.Options{Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dca.AnalyzeProgram(prog, dca.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog, rep
}

// TestDetailedAgreesWithAnalytic: the cycle-approximate simulator must
// land within the 10-20 % band the paper quotes for GPGPU simulators
// (we allow 25 % on this tiny workload), while costing far more time.
func TestDetailedAgreesWithAnalytic(t *testing.T) {
	prog, rep := smallProgram(t)
	spec := gpu.MustLookup("gtx1080ti")
	analytic, err := Simulate(rep, spec, Config{NoisePct: -1})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	detailed, err := SimulateDetailed(prog, rep, spec, Config{})
	if err != nil {
		t.Fatalf("detailed: %v", err)
	}
	elapsed := time.Since(start)
	dev := math.Abs(detailed.IPC-analytic.IPC) / analytic.IPC
	if dev > 0.25 {
		t.Errorf("detailed IPC %f deviates %.0f%% from analytic %f", detailed.IPC, 100*dev, analytic.IPC)
	}
	if detailed.Instructions != rep.Executed {
		t.Error("instruction totals must agree")
	}
	if detailed.RuntimeSec <= 0 || detailed.Cycles <= 0 {
		t.Errorf("implausible timing %+v", detailed)
	}
	if len(detailed.Kernels) != len(prog.Launches) {
		t.Errorf("kernel timings = %d", len(detailed.Kernels))
	}
	t.Logf("detailed simulation of %d instructions took %s (analytic: microseconds)",
		rep.Executed, elapsed)
}

func TestDetailedDeterministic(t *testing.T) {
	prog, rep := smallProgram(t)
	spec := gpu.MustLookup("t4")
	a, err := SimulateDetailed(prog, rep, spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateDetailed(prog, rep, spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Error("detailed simulation must be deterministic")
	}
}

func TestDetailedErrors(t *testing.T) {
	prog, rep := smallProgram(t)
	if _, err := SimulateDetailed(nil, rep, gpu.MustLookup("t4"), Config{}); err == nil {
		t.Error("nil program should error")
	}
	if _, err := SimulateDetailed(prog, nil, gpu.MustLookup("t4"), Config{}); err == nil {
		t.Error("nil report should error")
	}
	if _, err := SimulateDetailed(prog, rep, gpu.Spec{}, Config{}); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestSimulateKernelDetailedUnits(t *testing.T) {
	// A pure-ALU trace with one warp: every instruction issues
	// back-to-back but each waits for the previous result (in-order
	// scoreboard): about latency cycles per instruction.
	trace := make([]ptx.Class, 10)
	for i := range trace {
		trace[i] = ptx.ClassIntALU
	}
	cycles := simulateKernelDetailed(trace, 1, 1, 0)
	if cycles < 10 || cycles > 60 {
		t.Errorf("1-warp ALU trace cycles = %f", cycles)
	}
	// More warps hide latency: issue throughput improves.
	many := simulateKernelDetailed(trace, 16, 1, 0)
	perInstr1 := cycles / 10
	perInstr16 := many / (10 * 16) * 4 // 4 schedulers
	if perInstr16 > perInstr1 {
		t.Errorf("16 warps should pipeline better: %f vs %f", perInstr16, perInstr1)
	}
	// Degenerate inputs.
	if simulateKernelDetailed(nil, 4, 1, 0) != 0 {
		t.Error("empty trace should cost nothing")
	}
	if simulateKernelDetailed(trace, 0, 1, 0) != 0 {
		t.Error("zero warps should cost nothing")
	}
}

func TestLatencyTableOrdering(t *testing.T) {
	if !(latencyOf(ptx.ClassLoad) > latencyOf(ptx.ClassLoadShared)) {
		t.Error("global loads must out-latency shared loads")
	}
	if !(latencyOf(ptx.ClassSFU) > latencyOf(ptx.ClassFMA)) {
		t.Error("SFU must out-latency FMA")
	}
	if !(latencyOf(ptx.ClassFMA) > latencyOf(ptx.ClassIntALU)) {
		t.Error("FMA must out-latency int ALU")
	}
	if latencyOf(ptx.ClassUnknown) <= 0 {
		t.Error("unknown class needs a positive latency")
	}
}
