package gpusim

import (
	"testing"

	"cnnperf/internal/cnn"
	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
)

// analyzeModel compiles and analyses a small CNN.
func analyzeModel(t *testing.T) *dca.Report {
	t.Helper()
	b, x := cnn.NewBuilder("simnet", cnn.Shape{H: 16, W: 16, C: 3})
	x = b.Add(cnn.ConvNoBias(8, 3, 1, cnn.Same), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.MaxPool2D(2, 2, cnn.Valid), x)
	x = b.Add(cnn.Flatten{}, x)
	x = b.Add(cnn.FC(10), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ptxgen.Compile(m, ptxgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dca.AnalyzeProgram(prog, dca.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSimulateBasics(t *testing.T) {
	rep := analyzeModel(t)
	spec := gpu.MustLookup("gtx1080ti")
	res, err := Simulate(rep, spec, Config{})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Model != "simnet" || res.GPU != spec.Name {
		t.Errorf("identity wrong: %+v", res)
	}
	if res.Cycles <= 0 || res.RuntimeSec <= 0 {
		t.Fatalf("non-positive timing: %+v", res)
	}
	if res.Instructions != rep.Executed {
		t.Errorf("instructions %d != DCA %d", res.Instructions, rep.Executed)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %f", res.IPC)
	}
	if len(res.Kernels) != len(rep.Kernels) {
		t.Errorf("kernel timings = %d, want %d", len(res.Kernels), len(rep.Kernels))
	}
	for _, kt := range res.Kernels {
		if kt.Cycles <= 0 {
			t.Errorf("%s: cycles %f", kt.Kernel, kt.Cycles)
		}
		if kt.MemoryBound != (kt.MemCycles > kt.ComputeCycles) {
			t.Errorf("%s: MemoryBound flag inconsistent", kt.Kernel)
		}
	}
	if res.MemoryBoundFraction < 0 || res.MemoryBoundFraction > 1 {
		t.Errorf("memory-bound fraction = %f", res.MemoryBoundFraction)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	rep := analyzeModel(t)
	spec := gpu.MustLookup("v100s")
	a, err := Simulate(rep, spec, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(rep, spec, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IPC != b.IPC {
		t.Error("simulation is not deterministic")
	}
	c, err := Simulate(rep, spec, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == c.Cycles {
		t.Error("different seeds should perturb the measurement")
	}
}

func TestNoiseBoundsAndDisable(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		f := noiseFactor("m", "g", seed, 3)
		if f < 0.97 || f > 1.03 {
			t.Fatalf("noise %f outside +-3%%", f)
		}
	}
	if noiseFactor("m", "g", 1, 0) != 1 {
		t.Error("pct 0 should disable noise")
	}
	rep := analyzeModel(t)
	spec := gpu.MustLookup("t4")
	a, err := Simulate(rep, spec, Config{NoisePct: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(rep, spec, Config{NoisePct: -1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Error("noise disabled: seeds must not matter")
	}
}

// TestFasterGPUIsFaster: the same workload must run faster on a V100S
// than on a Quadro P1000 (more cores, more bandwidth).
func TestFasterGPUIsFaster(t *testing.T) {
	rep := analyzeModel(t)
	big, err := Simulate(rep, gpu.MustLookup("v100s"), Config{NoisePct: -1})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Simulate(rep, gpu.MustLookup("quadrop1000"), Config{NoisePct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if big.RuntimeSec >= small.RuntimeSec {
		t.Errorf("V100S (%g s) should beat P1000 (%g s)", big.RuntimeSec, small.RuntimeSec)
	}
	if s := Speedup(small, big); s <= 1 {
		t.Errorf("speedup = %f", s)
	}
}

// TestBandwidthSensitivity: with everything else fixed, doubling memory
// bandwidth must not slow the workload and should speed up memory-bound
// mixes.
func TestBandwidthSensitivity(t *testing.T) {
	rep := analyzeModel(t)
	base := gpu.MustLookup("gtx1080ti")
	fat := base
	fat.MemBandwidthGBs *= 2
	a, err := Simulate(rep, base, Config{NoisePct: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(rep, fat, Config{NoisePct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cycles > a.Cycles {
		t.Error("more bandwidth must not cost cycles")
	}
	if !(b.Cycles < a.Cycles) {
		t.Error("this elementwise-heavy mix should be bandwidth-sensitive")
	}
}

// TestL2CacheFiltersTraffic: a bigger L2 must not increase DRAM traffic.
func TestL2CacheFiltersTraffic(t *testing.T) {
	kr := dca.KernelReport{
		Kernel:          "k",
		PerClass:        map[ptx.Class]int64{ptx.ClassLoad: 1_000_000, ptx.ClassStore: 100_000},
		WorkingSetBytes: 3 << 20, // 3 MiB: between the two L2 sizes below
		Threads:         1 << 16,
	}
	smallL2 := simulateKernel(kr, gpu.MustLookup("gtx1080ti"), 300, 2<<20)
	bigL2 := simulateKernel(kr, gpu.MustLookup("gtx1080ti"), 300, 8<<20)
	if bigL2.DRAMBytes > smallL2.DRAMBytes {
		t.Errorf("bigger L2 increased DRAM traffic: %f > %f", bigL2.DRAMBytes, smallL2.DRAMBytes)
	}
	// Working set fits in the big L2: traffic collapses to compulsory.
	if bigL2.DRAMBytes != float64(kr.WorkingSetBytes) {
		t.Errorf("fit-in-L2 traffic = %f, want %d", bigL2.DRAMBytes, kr.WorkingSetBytes)
	}
}

func TestIssueWidths(t *testing.T) {
	if issueWidth(ptx.ClassFMA) != 1.0 {
		t.Error("FMA issues full width")
	}
	if issueWidth(ptx.ClassSFU) != 0.25 || issueWidth(ptx.ClassLoad) != 0.25 {
		t.Error("SFU/LSU are quarter width")
	}
	if issueWidth(ptx.ClassConvert) != 0.5 {
		t.Error("convert is half width")
	}
	if issueWidth(ptx.ClassUnknown) <= 0 {
		t.Error("unknown class must still issue")
	}
}

func TestSimulateOnMany(t *testing.T) {
	rep := analyzeModel(t)
	specs := []gpu.Spec{gpu.MustLookup("gtx1080ti"), gpu.MustLookup("v100s")}
	out, err := SimulateOnMany(rep, specs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].GPU == out[1].GPU {
		t.Errorf("results wrong: %+v", out)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, gpu.MustLookup("t4"), Config{}); err == nil {
		t.Error("nil report should error")
	}
	rep := analyzeModel(t)
	if _, err := Simulate(rep, gpu.Spec{}, Config{}); err == nil {
		t.Error("invalid spec should error")
	}
}

// TestOccupancyPenalty: tiny launches (few threads) must run at lower
// efficiency than saturating launches with identical totals per thread.
func TestOccupancyPenalty(t *testing.T) {
	mk := func(threads int64) dca.KernelReport {
		return dca.KernelReport{
			Kernel:          "k",
			PerClass:        map[ptx.Class]int64{ptx.ClassFMA: 10_000_000},
			WorkingSetBytes: 1 << 10,
			Threads:         threads,
		}
	}
	spec := gpu.MustLookup("gtx1080ti")
	tiny := simulateKernel(mk(256), spec, 300, 2<<20)
	big := simulateKernel(mk(1<<20), spec, 300, 2<<20)
	if tiny.ComputeCycles <= big.ComputeCycles {
		t.Error("under-occupied launch should take more cycles for the same work")
	}
}

// TestFrequencySweep checks the DVFS behaviour: runtime never increases
// with clock, and per-cycle IPC never improves (memory-bound kernels
// stall more cycles at higher clocks).
func TestFrequencySweep(t *testing.T) {
	rep := analyzeModel(t)
	spec := gpu.MustLookup("gtx1080ti")
	clocks := []float64{800, 1200, 1582, 2000}
	points, err := FrequencySweep(rep, spec, clocks, Config{NoisePct: -1})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(points) != len(clocks) {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Result.RuntimeSec > points[i-1].Result.RuntimeSec*1.0001 {
			t.Errorf("runtime grew with clock: %f MHz %g s vs %f MHz %g s",
				points[i].ClockMHz, points[i].Result.RuntimeSec,
				points[i-1].ClockMHz, points[i-1].Result.RuntimeSec)
		}
		if points[i].Result.IPC > points[i-1].Result.IPC*1.0001 {
			t.Errorf("IPC improved with clock: memory stalls should bite")
		}
	}
	// Error paths.
	if _, err := FrequencySweep(rep, spec, nil, Config{}); err == nil {
		t.Error("empty clock list should error")
	}
	if _, err := FrequencySweep(rep, spec, []float64{-5}, Config{}); err == nil {
		t.Error("negative clock should error")
	}
}

// TestPowerModel checks the energy extension: power sits between static
// floor and TDP, energy equals power*runtime, and more work costs more
// energy.
func TestPowerModel(t *testing.T) {
	rep := analyzeModel(t)
	spec := gpu.MustLookup("gtx1080ti")
	res, err := Simulate(rep, spec, Config{NoisePct: -1})
	if err != nil {
		t.Fatal(err)
	}
	static := 0.15 * float64(spec.TDPWatts)
	if res.AvgPowerW < static {
		t.Errorf("power %f below static floor %f", res.AvgPowerW, static)
	}
	if res.AvgPowerW > float64(spec.TDPWatts) {
		t.Errorf("power %f exceeds TDP %d", res.AvgPowerW, spec.TDPWatts)
	}
	if diff := res.EnergyJ - res.AvgPowerW*res.RuntimeSec; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy %f != power*runtime %f", res.EnergyJ, res.AvgPowerW*res.RuntimeSec)
	}
	// Doubling the workload (same mix) must not decrease energy.
	double := *rep
	double.PerClass = map[ptx.Class]int64{}
	for c, n := range rep.PerClass {
		double.PerClass[c] = 2 * n
	}
	double.Kernels = append(append([]dca.KernelReport{}, rep.Kernels...), rep.Kernels...)
	double.Executed = 2 * rep.Executed
	res2, err := Simulate(&double, spec, Config{NoisePct: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.EnergyJ <= res.EnergyJ {
		t.Errorf("double workload energy %f not above single %f", res2.EnergyJ, res.EnergyJ)
	}
}

// TestEnergyPerInstrTable sanity-checks the energy table ordering: SFU >
// FMA > int > control.
func TestEnergyPerInstrTable(t *testing.T) {
	if !(energyPerInstrPJ(ptx.ClassSFU) > energyPerInstrPJ(ptx.ClassFMA)) {
		t.Error("SFU ops must cost more than FMA")
	}
	if !(energyPerInstrPJ(ptx.ClassFMA) > energyPerInstrPJ(ptx.ClassIntALU)) {
		t.Error("FMA must cost more than int ALU")
	}
	if !(energyPerInstrPJ(ptx.ClassLoad) > energyPerInstrPJ(ptx.ClassFMA)) {
		t.Error("memory access must cost more than arithmetic")
	}
	if energyPerInstrPJ(ptx.ClassControl) <= 0 {
		t.Error("every class must have positive energy")
	}
}
