// Package gpusim is a deterministic SIMT timing simulator. It stands in
// for the paper's real GPUs and nvprof measurements (repro substitution:
// no NVIDIA hardware is available): given the dynamic instruction mix a
// CNN's kernels execute (from the dynamic code analysis) and a GPU's
// architectural datasheet, it models per-class functional-unit
// throughput, occupancy, L2-filtered DRAM traffic and kernel launch
// overhead, and reports cycles, IPC and runtime. The model is intentionally
// non-linear in the hardware features — exactly the structure the paper's
// regression study probes.
package gpusim

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"

	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/parallel"
	"cnnperf/internal/ptx"
)

// Config tunes the simulator.
type Config struct {
	// Seed perturbs the measurement noise (0 = default seed).
	Seed int64
	// NoisePct is the peak-to-peak measurement noise in percent
	// (default 3). Set negative to disable noise entirely.
	NoisePct float64
	// LaunchOverheadUs is the per-kernel launch latency in microseconds
	// (default 4).
	LaunchOverheadUs float64
	// ClockMHz overrides the simulation clock (default: boost clock).
	ClockMHz float64
	// Workers bounds the worker pool of the sweep entry points
	// (FrequencySweep); <= 0 selects GOMAXPROCS. Simulation is a pure
	// function of (report, spec, config), so the sweep output is
	// identical for every worker count.
	Workers int
}

func (c Config) noisePct() float64 {
	if c.NoisePct < 0 {
		return 0
	}
	if c.NoisePct == 0 {
		return 3
	}
	return c.NoisePct
}

func (c Config) launchOverheadUs() float64 {
	if c.LaunchOverheadUs <= 0 {
		return 4
	}
	return c.LaunchOverheadUs
}

// KernelTiming is the simulated timing of one kernel launch.
type KernelTiming struct {
	// Kernel is the kernel name.
	Kernel string
	// Cycles is the simulated duration in core cycles.
	Cycles float64
	// ComputeCycles is the functional-unit-bound component.
	ComputeCycles float64
	// MemCycles is the DRAM-bound component.
	MemCycles float64
	// DRAMBytes is the modelled off-chip traffic.
	DRAMBytes float64
	// MemoryBound reports whether DRAM dominated the kernel.
	MemoryBound bool
}

// Result is the simulated execution of one CNN on one GPU.
type Result struct {
	// Model is the simulated CNN.
	Model string
	// GPU is the simulated device name.
	GPU string
	// Cycles is the total simulated cycle count.
	Cycles float64
	// Instructions is the dynamic instruction total (from the DCA).
	Instructions int64
	// IPC is Instructions / Cycles — the paper's response variable.
	IPC float64
	// RuntimeSec is the simulated wall-clock inference latency.
	RuntimeSec float64
	// Kernels holds the per-launch timings.
	Kernels []KernelTiming
	// MemoryBoundFraction is the share of cycles spent in kernels
	// dominated by DRAM bandwidth.
	MemoryBoundFraction float64
	// EnergyJ is the modelled energy of the run in joules (dynamic
	// switching energy plus static power over the runtime), following
	// the instruction-category energy model of the authors' companion
	// power-estimation work.
	EnergyJ float64
	// AvgPowerW is EnergyJ / RuntimeSec, capped at the board TDP.
	AvgPowerW float64
}

// energyPerInstrPJ returns the dynamic switching energy of one executed
// instruction by class, in picojoules (16 nm-class reference values).
func energyPerInstrPJ(c ptx.Class) float64 {
	switch c {
	case ptx.ClassFMA:
		return 1.5
	case ptx.ClassFP32:
		return 1.2
	case ptx.ClassIntALU:
		return 0.8
	case ptx.ClassSFU:
		return 2.5
	case ptx.ClassLoad, ptx.ClassStore:
		return 4.0 // address path + L1/L2 access; DRAM priced per byte
	case ptx.ClassLoadShared, ptx.ClassStoreShared:
		return 1.0 // on-chip SRAM access
	case ptx.ClassCompare, ptx.ClassMove, ptx.ClassConvert:
		return 0.6
	case ptx.ClassBranch:
		return 0.5
	default:
		return 0.3
	}
}

// dramEnergyPerBytePJ is the off-chip access energy.
const dramEnergyPerBytePJ = 15.0

// issueWidth returns the per-SM, per-cycle throughput of an instruction
// class as a fraction of the SM's CUDA cores.
func issueWidth(c ptx.Class) float64 {
	switch c {
	case ptx.ClassIntALU, ptx.ClassFP32, ptx.ClassFMA,
		ptx.ClassCompare, ptx.ClassMove, ptx.ClassBranch, ptx.ClassControl:
		return 1.0
	case ptx.ClassConvert, ptx.ClassLoadShared, ptx.ClassStoreShared:
		return 0.5
	case ptx.ClassSFU, ptx.ClassLoad, ptx.ClassStore, ptx.ClassSync:
		return 0.25
	default:
		return 0.25
	}
}

// Simulate executes the DCA report of one CNN on the given GPU.
func Simulate(rep *dca.Report, spec gpu.Spec, cfg Config) (*Result, error) {
	if rep == nil {
		return nil, fmt.Errorf("gpusim: nil report")
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("gpusim: %w", err)
	}
	clock := cfg.ClockMHz
	if clock <= 0 {
		clock = spec.BoostClockMHz
	}
	clockHz := clock * 1e6
	bytesPerCycle := spec.MemBandwidthGBs * 1e9 / clockHz
	l2Bytes := float64(spec.L2CacheKB) * 1024
	launchOverheadCycles := cfg.launchOverheadUs() * 1e-6 * clockHz

	res := &Result{Model: rep.Model, GPU: spec.Name, Instructions: rep.Executed}
	var memBoundCycles float64
	for _, kr := range rep.Kernels {
		kt := simulateKernel(kr, spec, bytesPerCycle, l2Bytes)
		kt.Cycles += launchOverheadCycles
		res.Cycles += kt.Cycles
		if kt.MemoryBound {
			memBoundCycles += kt.Cycles
		}
		res.Kernels = append(res.Kernels, kt)
	}
	if res.Cycles <= 0 {
		return nil, fmt.Errorf("gpusim: model %s produced no cycles", rep.Model)
	}
	// Deterministic measurement noise, keyed on (model, gpu, seed).
	noise := noiseFactor(rep.Model, spec.Name, cfg.Seed, cfg.noisePct())
	res.Cycles *= noise

	res.IPC = float64(res.Instructions) / res.Cycles
	res.RuntimeSec = res.Cycles / clockHz
	res.MemoryBoundFraction = memBoundCycles / (res.Cycles / noise)

	// Energy: per-instruction switching energy + DRAM traffic + static
	// leakage over the runtime. Average power is capped at the TDP
	// (boards throttle), scaling the runtime is out of model scope.
	var dynPJ float64
	for _, c := range classOrder(rep.PerClass) {
		dynPJ += float64(rep.PerClass[c]) * energyPerInstrPJ(c)
	}
	for _, kt := range res.Kernels {
		dynPJ += kt.DRAMBytes * dramEnergyPerBytePJ
	}
	staticW := 0.15 * float64(spec.TDPWatts)
	res.EnergyJ = dynPJ*1e-12 + staticW*res.RuntimeSec
	res.AvgPowerW = res.EnergyJ / res.RuntimeSec
	if max := float64(spec.TDPWatts); res.AvgPowerW > max && max > 0 {
		res.AvgPowerW = max
		res.EnergyJ = max * res.RuntimeSec
	}
	return res, nil
}

// simulateKernel applies the per-kernel timing model.
func simulateKernel(kr dca.KernelReport, spec gpu.Spec, bytesPerCycle, l2Bytes float64) KernelTiming {
	kt := KernelTiming{Kernel: kr.Kernel}

	// Occupancy: small launches cannot fill the SM array. The usable
	// fraction grows with the resident-thread supply and saturates at 1.
	warps := float64(kr.Threads) / 32
	warpSlots := float64(spec.SMs) * 64 // resident warps per SM on all targets
	occ := warps / warpSlots
	if occ > 1 {
		occ = 1
	}
	eff := 0.25 + 0.75*occ

	// Functional-unit cycles: each class issues on its unit at a width
	// proportional to the SM's core count.
	cores := float64(spec.CUDACores)
	for _, c := range classOrder(kr.PerClass) {
		kt.ComputeCycles += float64(kr.PerClass[c]) / (issueWidth(c) * cores * eff)
	}

	// DRAM cycles: loads and stores move 4 bytes each; the L2 filters
	// re-references once the working set fits.
	bytesMoved := 4 * float64(kr.PerClass[ptx.ClassLoad]+kr.PerClass[ptx.ClassStore])
	kt.DRAMBytes = dramTraffic(bytesMoved, float64(kr.WorkingSetBytes), l2Bytes)
	dram := kt.DRAMBytes
	kt.MemCycles = dram / bytesPerCycle

	// Partial overlap of compute and memory pipelines.
	maxC, minC := kt.ComputeCycles, kt.MemCycles
	if minC > maxC {
		maxC, minC = minC, maxC
	}
	kt.Cycles = maxC + 0.15*minC
	kt.MemoryBound = kt.MemCycles > kt.ComputeCycles
	return kt
}

// classOrder returns the histogram's keys in the stable ptx.Classes
// order (unknown first). Summing float contributions in map-iteration
// order would make the simulated cycle count vary run to run — float
// addition is not associative — which the pipeline's determinism
// guarantee (byte-identical results for any worker count) forbids.
func classOrder(m map[ptx.Class]int64) []ptx.Class {
	out := make([]ptx.Class, 0, len(m))
	if _, ok := m[ptx.ClassUnknown]; ok {
		out = append(out, ptx.ClassUnknown)
	}
	for _, c := range ptx.Classes {
		if _, ok := m[c]; ok {
			out = append(out, c)
		}
	}
	return out
}

// dramTraffic models the off-chip bytes of a kernel: compulsory traffic
// (the working set) always goes to DRAM; re-references hit in L2 when
// the working set fits and spill proportionally when it does not.
func dramTraffic(bytesMoved, workingSet, l2Bytes float64) float64 {
	switch {
	case workingSet <= 0 || bytesMoved <= workingSet:
		return bytesMoved
	case workingSet <= l2Bytes:
		return workingSet
	default:
		spill := 1 - l2Bytes/workingSet
		return workingSet + (bytesMoved-workingSet)*spill
	}
}

// noiseFactor derives a deterministic multiplicative noise in
// [1-p/100, 1+p/100] from the run identity.
func noiseFactor(model, gpuName string, seed int64, pct float64) float64 {
	if pct == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", model, gpuName, seed)
	u := float64(h.Sum64()%1_000_003) / 1_000_003.0 // [0,1)
	return 1 + (2*u-1)*pct/100
}

// SimulateOnMany runs the same report across several GPUs (the DSE
// scenario of the paper's Table IV).
func SimulateOnMany(rep *dca.Report, specs []gpu.Spec, cfg Config) ([]*Result, error) {
	out := make([]*Result, 0, len(specs))
	for _, s := range specs {
		r, err := Simulate(rep, s, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// SweepPoint is one operating point of a frequency sweep.
type SweepPoint struct {
	// ClockMHz is the simulated core clock.
	ClockMHz float64
	// Result is the simulation outcome at that clock.
	Result *Result
}

// FrequencySweep simulates the workload at several core clocks — the
// dynamic-frequency-scaling study the paper lists as future work (and
// the scenario of its reference [9]). Memory-bound workloads barely gain
// runtime from higher clocks (DRAM bandwidth is fixed) while their IPC
// per cycle drops; compute-bound workloads scale nearly linearly.
func FrequencySweep(rep *dca.Report, spec gpu.Spec, clocksMHz []float64, cfg Config) ([]SweepPoint, error) {
	if len(clocksMHz) == 0 {
		return nil, fmt.Errorf("gpusim: empty clock list")
	}
	for _, clk := range clocksMHz {
		if clk <= 0 {
			return nil, fmt.Errorf("gpusim: invalid clock %f MHz", clk)
		}
	}
	out := make([]SweepPoint, len(clocksMHz))
	err := parallel.ForEach(context.Background(), cfg.Workers, len(clocksMHz), func(_ context.Context, i int) error {
		c := cfg
		c.ClockMHz = clocksMHz[i]
		r, err := Simulate(rep, spec, c)
		if err != nil {
			return err
		}
		out[i] = SweepPoint{ClockMHz: clocksMHz[i], Result: r}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Speedup returns how much faster (in simulated wall-clock) device b runs
// the workload than device a.
func Speedup(a, b *Result) float64 {
	if b.RuntimeSec == 0 {
		return math.Inf(1)
	}
	return a.RuntimeSec / b.RuntimeSec
}
