package cnn

import "testing"

// TestOpContracts sweeps every op through the full Op interface on a
// representative input and checks the universal contracts: shapes valid,
// params/neurons/FLOPs non-negative, zero-param ops report zero, and
// neuron counts match the documented convention.
func TestOpContracts(t *testing.T) {
	fm := Shape{14, 14, 8}  // feature map input
	flat := Shape{1, 1, 64} // flat input
	gate := Shape{1, 1, 8}  // broadcastable gate

	cases := []struct {
		name       string
		op         Op
		ins        []Shape
		wantParams bool // op carries trainable parameters
		outNeurons bool // op contributes its output elements as neurons
	}{
		{"conv", Conv(4, 3, 1, Same), []Shape{fm}, true, true},
		{"conv_grouped", Conv2D{Filters: 8, KH: 3, KW: 3, SH: 1, SW: 1, Pad: Same, Groups: 2}, []Shape{fm}, true, true},
		{"depthwise", DepthwiseConv(3, 1, Same), []Shape{fm}, true, true},
		{"depthwise_mult", DepthwiseConv2D{KH: 3, KW: 3, SH: 1, SW: 1, Pad: Same, Multiplier: 2, UseBias: true}, []Shape{fm}, true, true},
		{"dense", FC(10), []Shape{flat}, true, true},
		{"dense_nobias", Dense{Units: 10}, []Shape{flat}, true, true},
		{"maxpool", MaxPool2D(2, 2, Valid), []Shape{fm}, false, true},
		{"avgpool", AvgPool2D(2, 2, Valid), []Shape{fm}, false, true},
		{"gap", GlobalAvgPool(), []Shape{fm}, false, true},
		{"gmp", GlobalMaxPool(), []Shape{fm}, false, true},
		{"bn", BN(), []Shape{fm}, true, false},
		{"gn", GroupNorm{Groups: 4}, []Shape{fm}, true, false},
		{"relu", ReLU(), []Shape{fm}, false, false},
		{"swish", Swish(), []Shape{fm}, false, false},
		{"sigmoid", Sigmoid(), []Shape{fm}, false, false},
		{"softmax", Softmax(), []Shape{flat}, false, false},
		{"tanh", Activation{Fn: "tanh"}, []Shape{fm}, false, false},
		{"flatten", Flatten{}, []Shape{fm}, false, false},
		{"dropout", Dropout{Rate: 0.5}, []Shape{fm}, false, false},
		{"pad", Pad2D(2), []Shape{fm}, false, false},
		{"add", Add{}, []Shape{fm, fm}, false, true},
		{"add3", Add{}, []Shape{fm, fm, fm}, false, true},
		{"multiply", Multiply{}, []Shape{fm, gate}, false, true},
		{"concat", Concat{}, []Shape{fm, fm}, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, err := c.op.OutShape(c.ins)
			if err != nil {
				t.Fatalf("OutShape: %v", err)
			}
			if !out.Valid() {
				t.Fatalf("invalid output %v", out)
			}
			if c.op.Kind() == "" {
				t.Error("empty kind")
			}
			p := c.op.Params(c.ins)
			if p < 0 {
				t.Errorf("negative params %d", p)
			}
			if c.wantParams != (p > 0) {
				t.Errorf("params = %d, wantParams = %v", p, c.wantParams)
			}
			n := c.op.Neurons(c.ins, out)
			if n < 0 {
				t.Errorf("negative neurons %d", n)
			}
			if c.outNeurons && n != out.Elements() {
				t.Errorf("neurons = %d, want out elements %d", n, out.Elements())
			}
			if !c.outNeurons && n != 0 {
				t.Errorf("neurons = %d, want 0", n)
			}
			if f := c.op.FLOPs(c.ins, out); f < 0 {
				t.Errorf("negative FLOPs %d", f)
			}
			// Every op except Input must reject a zero-input call.
			if _, err := c.op.OutShape(nil); err == nil {
				t.Error("OutShape(nil) should error")
			}
		})
	}
	// InputOp contract.
	in := InputOp{Shape: fm}
	if out, err := in.OutShape(nil); err != nil || out != fm {
		t.Errorf("input OutShape = %v, %v", out, err)
	}
	if _, err := in.OutShape([]Shape{fm}); err == nil {
		t.Error("input with inputs should error")
	}
	if _, err := (InputOp{}).OutShape(nil); err == nil {
		t.Error("invalid input shape should error")
	}
	if in.Params(nil) != 0 || in.Neurons(nil, fm) != 0 || in.FLOPs(nil, fm) != 0 {
		t.Error("input must be free")
	}
}

func TestModelAccessors(t *testing.T) {
	m := tinyNet(t)
	nodes := m.Nodes()
	if len(nodes) != m.LayerCount()+1 {
		t.Errorf("Nodes = %d, layers+input = %d", len(nodes), m.LayerCount()+1)
	}
	for i, n := range nodes {
		if n.ID() != i {
			t.Errorf("node %d has ID %d", i, n.ID())
		}
	}
	// ActivationVolume >= NeuronCount (it includes every node's output).
	if m.ActivationVolume() < m.NeuronCount() {
		t.Error("activation volume must dominate neuron count")
	}
	// And equals the sum over all node shapes.
	var want int64
	for _, n := range nodes {
		want += n.OutShape().Elements()
	}
	if m.ActivationVolume() != want {
		t.Errorf("activation volume %d != %d", m.ActivationVolume(), want)
	}
}

func TestGlobalMaxPoolInGraph(t *testing.T) {
	b, x := NewBuilder("gmp", Shape{8, 8, 4})
	x = b.Add(GlobalMaxPool(), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	if m.Output().OutShape() != (Shape{1, 1, 4}) {
		t.Errorf("out = %v", m.Output().OutShape())
	}
}
