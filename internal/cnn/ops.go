package cnn

import "fmt"

// Op is a network operation. Implementations are pure descriptions: they
// compute output shapes, trainable-parameter counts, neuron counts and FLOP
// estimates from their configuration and input shapes without allocating
// any weights.
type Op interface {
	// Kind returns a short stable identifier such as "conv2d".
	Kind() string
	// OutShape infers the output shape from the input shapes.
	OutShape(ins []Shape) (Shape, error)
	// Params returns the number of trainable parameters of the op.
	Params(ins []Shape) int64
	// Neurons returns the number of neurons (output units) the op
	// contributes to the network, following the convention that only
	// layers performing a computation (conv, dense, pooling, merge)
	// contribute their output elements.
	Neurons(ins []Shape, out Shape) int64
	// FLOPs estimates the floating-point operations of one forward pass
	// (multiply and add counted separately).
	FLOPs(ins []Shape, out Shape) int64
}

func oneInput(kind string, ins []Shape) (Shape, error) {
	if len(ins) != 1 {
		return Shape{}, fmt.Errorf("cnn: %s expects exactly 1 input, got %d", kind, len(ins))
	}
	if !ins[0].Valid() {
		return Shape{}, fmt.Errorf("cnn: %s got invalid input shape %v", kind, ins[0])
	}
	return ins[0], nil
}

// ---------------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------------

// InputOp is the graph source; it carries the model input shape.
type InputOp struct {
	// Shape is the model's input feature-map shape.
	Shape Shape
}

// Kind implements Op.
func (o InputOp) Kind() string { return "input" }

// OutShape implements Op.
func (o InputOp) OutShape(ins []Shape) (Shape, error) {
	if len(ins) != 0 {
		return Shape{}, fmt.Errorf("cnn: input op takes no inputs")
	}
	if !o.Shape.Valid() {
		return Shape{}, fmt.Errorf("cnn: invalid input shape %v", o.Shape)
	}
	return o.Shape, nil
}

// Params implements Op.
func (o InputOp) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o InputOp) Neurons([]Shape, Shape) int64 { return 0 }

// FLOPs implements Op.
func (o InputOp) FLOPs([]Shape, Shape) int64 { return 0 }

// ---------------------------------------------------------------------------
// Conv2D
// ---------------------------------------------------------------------------

// Conv2D is a standard (optionally grouped) 2-D convolution.
type Conv2D struct {
	// Filters is the number of output channels.
	Filters int
	// KH, KW are the kernel height and width.
	KH, KW int
	// SH, SW are the vertical and horizontal strides.
	SH, SW int
	// Pad selects Same or Valid padding.
	Pad Padding
	// UseBias adds one trainable bias per filter.
	UseBias bool
	// Groups splits input and output channels into independent groups
	// (1 = dense convolution). Input channels must divide evenly.
	Groups int
}

// Conv is a convenience constructor for a square-kernel convolution with
// bias and a single group.
func Conv(filters, k, stride int, pad Padding) Conv2D {
	return Conv2D{Filters: filters, KH: k, KW: k, SH: stride, SW: stride, Pad: pad, UseBias: true, Groups: 1}
}

// ConvNoBias is Conv without the bias term (the usual form before
// batch normalisation).
func ConvNoBias(filters, k, stride int, pad Padding) Conv2D {
	return Conv2D{Filters: filters, KH: k, KW: k, SH: stride, SW: stride, Pad: pad, UseBias: false, Groups: 1}
}

// Kind implements Op.
func (o Conv2D) Kind() string { return "conv2d" }

func (o Conv2D) groups() int {
	if o.Groups <= 0 {
		return 1
	}
	return o.Groups
}

// OutShape implements Op.
func (o Conv2D) OutShape(ins []Shape) (Shape, error) {
	in, err := oneInput(o.Kind(), ins)
	if err != nil {
		return Shape{}, err
	}
	if o.Filters <= 0 {
		return Shape{}, fmt.Errorf("cnn: conv2d needs positive filter count, got %d", o.Filters)
	}
	if in.C%o.groups() != 0 || o.Filters%o.groups() != 0 {
		return Shape{}, fmt.Errorf("cnn: conv2d groups %d must divide channels %d and filters %d", o.groups(), in.C, o.Filters)
	}
	h, err := windowOut(in.H, o.KH, o.SH, o.Pad)
	if err != nil {
		return Shape{}, err
	}
	w, err := windowOut(in.W, o.KW, o.SW, o.Pad)
	if err != nil {
		return Shape{}, err
	}
	return Shape{H: h, W: w, C: o.Filters}, nil
}

// Params implements Op.
func (o Conv2D) Params(ins []Shape) int64 {
	in := ins[0]
	g := int64(o.groups())
	weights := int64(o.KH) * int64(o.KW) * (int64(in.C) / g) * int64(o.Filters)
	if o.UseBias {
		weights += int64(o.Filters)
	}
	return weights
}

// Neurons implements Op.
func (o Conv2D) Neurons(_ []Shape, out Shape) int64 { return out.Elements() }

// FLOPs implements Op.
func (o Conv2D) FLOPs(ins []Shape, out Shape) int64 {
	in := ins[0]
	g := int64(o.groups())
	macs := out.Elements() * int64(o.KH) * int64(o.KW) * (int64(in.C) / g)
	fl := 2 * macs
	if o.UseBias {
		fl += out.Elements()
	}
	return fl
}

// ---------------------------------------------------------------------------
// DepthwiseConv2D
// ---------------------------------------------------------------------------

// DepthwiseConv2D convolves each input channel independently with its own
// kernel (MobileNet-style), multiplying the channel count by Multiplier.
type DepthwiseConv2D struct {
	// KH, KW are the kernel dimensions.
	KH, KW int
	// SH, SW are the strides.
	SH, SW int
	// Pad selects Same or Valid padding.
	Pad Padding
	// Multiplier is the depth multiplier (usually 1).
	Multiplier int
	// UseBias adds one trainable bias per output channel.
	UseBias bool
}

// DepthwiseConv builds a square-kernel depthwise convolution without bias
// and multiplier 1.
func DepthwiseConv(k, stride int, pad Padding) DepthwiseConv2D {
	return DepthwiseConv2D{KH: k, KW: k, SH: stride, SW: stride, Pad: pad, Multiplier: 1}
}

// Kind implements Op.
func (o DepthwiseConv2D) Kind() string { return "depthwise_conv2d" }

func (o DepthwiseConv2D) mult() int {
	if o.Multiplier <= 0 {
		return 1
	}
	return o.Multiplier
}

// OutShape implements Op.
func (o DepthwiseConv2D) OutShape(ins []Shape) (Shape, error) {
	in, err := oneInput(o.Kind(), ins)
	if err != nil {
		return Shape{}, err
	}
	h, err := windowOut(in.H, o.KH, o.SH, o.Pad)
	if err != nil {
		return Shape{}, err
	}
	w, err := windowOut(in.W, o.KW, o.SW, o.Pad)
	if err != nil {
		return Shape{}, err
	}
	return Shape{H: h, W: w, C: in.C * o.mult()}, nil
}

// Params implements Op.
func (o DepthwiseConv2D) Params(ins []Shape) int64 {
	in := ins[0]
	p := int64(o.KH) * int64(o.KW) * int64(in.C) * int64(o.mult())
	if o.UseBias {
		p += int64(in.C) * int64(o.mult())
	}
	return p
}

// Neurons implements Op.
func (o DepthwiseConv2D) Neurons(_ []Shape, out Shape) int64 { return out.Elements() }

// FLOPs implements Op.
func (o DepthwiseConv2D) FLOPs(_ []Shape, out Shape) int64 {
	macs := out.Elements() * int64(o.KH) * int64(o.KW)
	fl := 2 * macs
	if o.UseBias {
		fl += out.Elements()
	}
	return fl
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

// Dense is a fully connected layer over a flat input vector.
type Dense struct {
	// Units is the number of output neurons.
	Units int
	// UseBias adds one trainable bias per unit.
	UseBias bool
}

// FC builds a dense layer with bias.
func FC(units int) Dense { return Dense{Units: units, UseBias: true} }

// Kind implements Op.
func (o Dense) Kind() string { return "dense" }

// OutShape implements Op.
func (o Dense) OutShape(ins []Shape) (Shape, error) {
	in, err := oneInput(o.Kind(), ins)
	if err != nil {
		return Shape{}, err
	}
	if o.Units <= 0 {
		return Shape{}, fmt.Errorf("cnn: dense needs positive units, got %d", o.Units)
	}
	if !in.Flat() {
		return Shape{}, fmt.Errorf("cnn: dense requires a flat input, got %v (insert Flatten)", in)
	}
	return Shape{H: 1, W: 1, C: o.Units}, nil
}

// Params implements Op.
func (o Dense) Params(ins []Shape) int64 {
	p := int64(ins[0].C) * int64(o.Units)
	if o.UseBias {
		p += int64(o.Units)
	}
	return p
}

// Neurons implements Op.
func (o Dense) Neurons(_ []Shape, out Shape) int64 { return out.Elements() }

// FLOPs implements Op.
func (o Dense) FLOPs(ins []Shape, out Shape) int64 {
	fl := 2 * int64(ins[0].C) * int64(o.Units)
	if o.UseBias {
		fl += out.Elements()
	}
	return fl
}

// ---------------------------------------------------------------------------
// Pooling
// ---------------------------------------------------------------------------

// PoolKind distinguishes max and average pooling.
type PoolKind int

const (
	// MaxPool selects the maximum inside each window.
	MaxPool PoolKind = iota
	// AvgPool averages each window.
	AvgPool
)

// Pool2D is a spatial pooling layer.
type Pool2D struct {
	// Kind selects max or average pooling.
	Kind2 PoolKind
	// KH, KW are the window dimensions.
	KH, KW int
	// SH, SW are the strides.
	SH, SW int
	// Pad selects Same or Valid padding.
	Pad Padding
}

// MaxPool2D builds a square max-pooling layer.
func MaxPool2D(k, stride int, pad Padding) Pool2D {
	return Pool2D{Kind2: MaxPool, KH: k, KW: k, SH: stride, SW: stride, Pad: pad}
}

// AvgPool2D builds a square average-pooling layer.
func AvgPool2D(k, stride int, pad Padding) Pool2D {
	return Pool2D{Kind2: AvgPool, KH: k, KW: k, SH: stride, SW: stride, Pad: pad}
}

// Kind implements Op.
func (o Pool2D) Kind() string {
	if o.Kind2 == AvgPool {
		return "avg_pool2d"
	}
	return "max_pool2d"
}

// OutShape implements Op.
func (o Pool2D) OutShape(ins []Shape) (Shape, error) {
	in, err := oneInput(o.Kind(), ins)
	if err != nil {
		return Shape{}, err
	}
	h, err := windowOut(in.H, o.KH, o.SH, o.Pad)
	if err != nil {
		return Shape{}, err
	}
	w, err := windowOut(in.W, o.KW, o.SW, o.Pad)
	if err != nil {
		return Shape{}, err
	}
	return Shape{H: h, W: w, C: in.C}, nil
}

// Params implements Op.
func (o Pool2D) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o Pool2D) Neurons(_ []Shape, out Shape) int64 { return out.Elements() }

// FLOPs implements Op.
func (o Pool2D) FLOPs(_ []Shape, out Shape) int64 {
	return out.Elements() * int64(o.KH) * int64(o.KW)
}

// GlobalPool2D reduces the spatial dimensions to 1x1.
type GlobalPool2D struct {
	// Kind2 selects max or average reduction.
	Kind2 PoolKind
}

// GlobalAvgPool builds a global average pooling layer.
func GlobalAvgPool() GlobalPool2D { return GlobalPool2D{Kind2: AvgPool} }

// GlobalMaxPool builds a global max pooling layer.
func GlobalMaxPool() GlobalPool2D { return GlobalPool2D{Kind2: MaxPool} }

// Kind implements Op.
func (o GlobalPool2D) Kind() string {
	if o.Kind2 == AvgPool {
		return "global_avg_pool"
	}
	return "global_max_pool"
}

// OutShape implements Op.
func (o GlobalPool2D) OutShape(ins []Shape) (Shape, error) {
	in, err := oneInput(o.Kind(), ins)
	if err != nil {
		return Shape{}, err
	}
	return Shape{H: 1, W: 1, C: in.C}, nil
}

// Params implements Op.
func (o GlobalPool2D) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o GlobalPool2D) Neurons(_ []Shape, out Shape) int64 { return out.Elements() }

// FLOPs implements Op.
func (o GlobalPool2D) FLOPs(ins []Shape, _ Shape) int64 { return ins[0].Elements() }

// ---------------------------------------------------------------------------
// Normalisation
// ---------------------------------------------------------------------------

// BatchNorm is channel-wise batch normalisation. Following the Keras
// convention, only the scale (gamma) and shift (beta) are trainable; the
// moving statistics are not counted.
type BatchNorm struct {
	// Scale includes the gamma parameter (true for all the paper's nets).
	Scale bool
	// Center includes the beta parameter.
	Center bool
}

// BN builds a standard batch normalisation with scale and center.
func BN() BatchNorm { return BatchNorm{Scale: true, Center: true} }

// Kind implements Op.
func (o BatchNorm) Kind() string { return "batch_norm" }

// OutShape implements Op.
func (o BatchNorm) OutShape(ins []Shape) (Shape, error) { return oneInput(o.Kind(), ins) }

// Params implements Op.
func (o BatchNorm) Params(ins []Shape) int64 {
	var per int64
	if o.Scale {
		per++
	}
	if o.Center {
		per++
	}
	return per * int64(ins[0].C)
}

// Neurons implements Op.
func (o BatchNorm) Neurons([]Shape, Shape) int64 { return 0 }

// FLOPs implements Op.
func (o BatchNorm) FLOPs(_ []Shape, out Shape) int64 { return 2 * out.Elements() }

// GroupNorm normalises groups of channels (used by the Big Transfer
// m-r* ResNets of Table I). Gamma and beta are trainable per channel.
type GroupNorm struct {
	// Groups is the number of channel groups.
	Groups int
}

// Kind implements Op.
func (o GroupNorm) Kind() string { return "group_norm" }

// OutShape implements Op.
func (o GroupNorm) OutShape(ins []Shape) (Shape, error) { return oneInput(o.Kind(), ins) }

// Params implements Op.
func (o GroupNorm) Params(ins []Shape) int64 { return 2 * int64(ins[0].C) }

// Neurons implements Op.
func (o GroupNorm) Neurons([]Shape, Shape) int64 { return 0 }

// FLOPs implements Op.
func (o GroupNorm) FLOPs(_ []Shape, out Shape) int64 { return 4 * out.Elements() }

// ---------------------------------------------------------------------------
// Activations and shape plumbing
// ---------------------------------------------------------------------------

// Activation applies an element-wise non-linearity. It has no trainable
// parameters; the Fn string (relu, relu6, swish, sigmoid, softmax, tanh,
// gelu) only affects PTX generation downstream.
type Activation struct {
	// Fn names the activation function.
	Fn string
}

// ReLU builds a rectified-linear activation.
func ReLU() Activation { return Activation{Fn: "relu"} }

// Swish builds a swish (SiLU) activation (EfficientNet).
func Swish() Activation { return Activation{Fn: "swish"} }

// Softmax builds a softmax activation (classifier heads).
func Softmax() Activation { return Activation{Fn: "softmax"} }

// Sigmoid builds a sigmoid activation (squeeze-excite gates).
func Sigmoid() Activation { return Activation{Fn: "sigmoid"} }

// Kind implements Op.
func (o Activation) Kind() string { return "activation" }

// OutShape implements Op.
func (o Activation) OutShape(ins []Shape) (Shape, error) { return oneInput(o.Kind(), ins) }

// Params implements Op.
func (o Activation) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o Activation) Neurons([]Shape, Shape) int64 { return 0 }

// FLOPs implements Op.
func (o Activation) FLOPs(_ []Shape, out Shape) int64 {
	switch o.Fn {
	case "swish", "sigmoid", "softmax", "gelu", "tanh":
		return 4 * out.Elements()
	default:
		return out.Elements()
	}
}

// Flatten collapses a feature map to a flat vector.
type Flatten struct{}

// Kind implements Op.
func (o Flatten) Kind() string { return "flatten" }

// OutShape implements Op.
func (o Flatten) OutShape(ins []Shape) (Shape, error) {
	in, err := oneInput(o.Kind(), ins)
	if err != nil {
		return Shape{}, err
	}
	return Shape{H: 1, W: 1, C: int(in.Elements())}, nil
}

// Params implements Op.
func (o Flatten) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o Flatten) Neurons([]Shape, Shape) int64 { return 0 }

// FLOPs implements Op.
func (o Flatten) FLOPs([]Shape, Shape) int64 { return 0 }

// Dropout is an inference no-op kept so that graph depth matches the
// published topologies.
type Dropout struct {
	// Rate is the training-time drop probability (unused at inference).
	Rate float64
}

// Kind implements Op.
func (o Dropout) Kind() string { return "dropout" }

// OutShape implements Op.
func (o Dropout) OutShape(ins []Shape) (Shape, error) { return oneInput(o.Kind(), ins) }

// Params implements Op.
func (o Dropout) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o Dropout) Neurons([]Shape, Shape) int64 { return 0 }

// FLOPs implements Op.
func (o Dropout) FLOPs([]Shape, Shape) int64 { return 0 }

// ZeroPad2D adds explicit spatial zero padding (used before strided
// valid-padding convolutions in ResNet/Inception style stems).
type ZeroPad2D struct {
	// Top, Bottom, Left, Right are the per-side pad amounts.
	Top, Bottom, Left, Right int
}

// Pad2D pads symmetrically by p on all sides.
func Pad2D(p int) ZeroPad2D { return ZeroPad2D{Top: p, Bottom: p, Left: p, Right: p} }

// Kind implements Op.
func (o ZeroPad2D) Kind() string { return "zero_pad2d" }

// OutShape implements Op.
func (o ZeroPad2D) OutShape(ins []Shape) (Shape, error) {
	in, err := oneInput(o.Kind(), ins)
	if err != nil {
		return Shape{}, err
	}
	return Shape{H: in.H + o.Top + o.Bottom, W: in.W + o.Left + o.Right, C: in.C}, nil
}

// Params implements Op.
func (o ZeroPad2D) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o ZeroPad2D) Neurons([]Shape, Shape) int64 { return 0 }

// FLOPs implements Op.
func (o ZeroPad2D) FLOPs([]Shape, Shape) int64 { return 0 }

// ---------------------------------------------------------------------------
// Merge ops
// ---------------------------------------------------------------------------

// Add sums feature maps element-wise (residual connections).
type Add struct{}

// Kind implements Op.
func (o Add) Kind() string { return "add" }

// OutShape implements Op.
func (o Add) OutShape(ins []Shape) (Shape, error) {
	if len(ins) < 2 {
		return Shape{}, fmt.Errorf("cnn: add needs at least 2 inputs, got %d", len(ins))
	}
	for _, s := range ins[1:] {
		if s != ins[0] {
			return Shape{}, fmt.Errorf("cnn: add shape mismatch %v vs %v", ins[0], s)
		}
	}
	return ins[0], nil
}

// Params implements Op.
func (o Add) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o Add) Neurons(_ []Shape, out Shape) int64 { return out.Elements() }

// FLOPs implements Op.
func (o Add) FLOPs(ins []Shape, out Shape) int64 {
	return int64(len(ins)-1) * out.Elements()
}

// Multiply multiplies feature maps element-wise, broadcasting 1x1xC gates
// across the spatial extent (squeeze-and-excite).
type Multiply struct{}

// Kind implements Op.
func (o Multiply) Kind() string { return "multiply" }

// OutShape implements Op.
func (o Multiply) OutShape(ins []Shape) (Shape, error) {
	if len(ins) != 2 {
		return Shape{}, fmt.Errorf("cnn: multiply needs exactly 2 inputs, got %d", len(ins))
	}
	a, b := ins[0], ins[1]
	if a == b {
		return a, nil
	}
	// Broadcast a 1x1xC gate over HxWxC.
	if b.Flat() && b.C == a.C {
		return a, nil
	}
	if a.Flat() && a.C == b.C {
		return b, nil
	}
	return Shape{}, fmt.Errorf("cnn: multiply shape mismatch %v vs %v", a, b)
}

// Params implements Op.
func (o Multiply) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o Multiply) Neurons(_ []Shape, out Shape) int64 { return out.Elements() }

// FLOPs implements Op.
func (o Multiply) FLOPs(_ []Shape, out Shape) int64 { return out.Elements() }

// Concat joins feature maps along the channel axis (DenseNet, Inception).
type Concat struct{}

// Kind implements Op.
func (o Concat) Kind() string { return "concat" }

// OutShape implements Op.
func (o Concat) OutShape(ins []Shape) (Shape, error) {
	if len(ins) < 2 {
		return Shape{}, fmt.Errorf("cnn: concat needs at least 2 inputs, got %d", len(ins))
	}
	c := 0
	for _, s := range ins {
		if s.H != ins[0].H || s.W != ins[0].W {
			return Shape{}, fmt.Errorf("cnn: concat spatial mismatch %v vs %v", ins[0], s)
		}
		c += s.C
	}
	return Shape{H: ins[0].H, W: ins[0].W, C: c}, nil
}

// Params implements Op.
func (o Concat) Params([]Shape) int64 { return 0 }

// Neurons implements Op.
func (o Concat) Neurons([]Shape, Shape) int64 { return 0 }

// FLOPs implements Op.
func (o Concat) FLOPs([]Shape, Shape) int64 { return 0 }
