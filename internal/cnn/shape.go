// Package cnn provides a graph-based intermediate representation for
// convolutional neural networks together with the static analysis the
// paper's "Static Analyzer" module performs: output-shape inference,
// trainable-parameter counting, neuron counting and FLOP estimation.
//
// Models are directed acyclic graphs of typed operations (convolutions,
// pooling, dense layers, normalisation, element-wise merges, ...). The
// package is purely structural: it never allocates weight tensors, so
// analysing even the largest networks of the paper's Table I takes
// microseconds.
package cnn

import "fmt"

// Shape describes the dimensions of a feature map flowing between layers.
// Convolutional feature maps use all three fields; flat vectors (after
// Flatten or Dense layers) are represented with H == W == 1 and C holding
// the vector length.
type Shape struct {
	// H is the spatial height of the feature map.
	H int
	// W is the spatial width of the feature map.
	W int
	// C is the number of channels (or the vector length for flat shapes).
	C int
}

// Elements returns the total number of scalar activations in the shape.
func (s Shape) Elements() int64 {
	return int64(s.H) * int64(s.W) * int64(s.C)
}

// Flat reports whether the shape is a flat vector (no spatial extent).
func (s Shape) Flat() bool { return s.H == 1 && s.W == 1 }

// Valid reports whether all dimensions are strictly positive.
func (s Shape) Valid() bool { return s.H > 0 && s.W > 0 && s.C > 0 }

// String renders the shape as HxWxC.
func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C)
}

// Padding selects the boundary handling of convolution and pooling windows.
type Padding int

const (
	// Valid performs no padding: output = floor((in-k)/stride)+1.
	Valid Padding = iota
	// Same pads so that output = ceil(in/stride).
	Same
)

// String returns the conventional lower-case padding name.
func (p Padding) String() string {
	if p == Same {
		return "same"
	}
	return "valid"
}

// windowOut computes the output extent of a sliding window of size k with
// the given stride and padding over an input extent of in.
func windowOut(in, k, stride int, pad Padding) (int, error) {
	if in <= 0 || k <= 0 || stride <= 0 {
		return 0, fmt.Errorf("cnn: invalid window in=%d k=%d stride=%d", in, k, stride)
	}
	switch pad {
	case Same:
		return (in + stride - 1) / stride, nil
	case Valid:
		if k > in {
			return 0, fmt.Errorf("cnn: window %d larger than input %d with valid padding", k, in)
		}
		return (in-k)/stride + 1, nil
	default:
		return 0, fmt.Errorf("cnn: unknown padding %d", pad)
	}
}

// samePadTotal returns the total padding (both sides combined) that Same
// padding adds for window k, stride s over extent in. Used by FLOP and
// memory-traffic estimation.
func samePadTotal(in, k, stride int) int {
	out := (in + stride - 1) / stride
	pad := (out-1)*stride + k - in
	if pad < 0 {
		pad = 0
	}
	return pad
}
