package cnn

import (
	"testing"
	"testing/quick"
)

func shapeOf(t *testing.T, op Op, ins ...Shape) Shape {
	t.Helper()
	out, err := op.OutShape(ins)
	if err != nil {
		t.Fatalf("%s.OutShape(%v): %v", op.Kind(), ins, err)
	}
	return out
}

func TestConv2DShapeAndParams(t *testing.T) {
	in := Shape{224, 224, 3}
	op := Conv(64, 3, 1, Same)
	out := shapeOf(t, op, in)
	if out != (Shape{224, 224, 64}) {
		t.Errorf("out = %v", out)
	}
	// 3*3*3*64 weights + 64 bias = 1792 (the classic VGG16 first layer).
	if p := op.Params([]Shape{in}); p != 1792 {
		t.Errorf("params = %d, want 1792", p)
	}
	// FLOPs = 2*macs + bias adds.
	wantFLOPs := int64(2*224*224*64*3*3*3 + 224*224*64)
	if f := op.FLOPs([]Shape{in}, out); f != wantFLOPs {
		t.Errorf("flops = %d, want %d", f, wantFLOPs)
	}
}

func TestConv2DStridedValid(t *testing.T) {
	// AlexNet first layer: 227x227x3, 96 filters 11x11 stride 4 valid -> 55x55x96.
	in := Shape{227, 227, 3}
	op := Conv(96, 11, 4, Valid)
	out := shapeOf(t, op, in)
	if out != (Shape{55, 55, 96}) {
		t.Errorf("out = %v, want 55x55x96", out)
	}
	if p := op.Params([]Shape{in}); p != 11*11*3*96+96 {
		t.Errorf("params = %d", p)
	}
}

func TestConv2DGroups(t *testing.T) {
	in := Shape{27, 27, 96}
	op := Conv2D{Filters: 256, KH: 5, KW: 5, SH: 1, SW: 1, Pad: Same, UseBias: true, Groups: 2}
	out := shapeOf(t, op, in)
	if out != (Shape{27, 27, 256}) {
		t.Errorf("out = %v", out)
	}
	// Grouped conv halves the per-filter input channels.
	if p := op.Params([]Shape{in}); p != 5*5*48*256+256 {
		t.Errorf("params = %d, want %d", p, 5*5*48*256+256)
	}
	// Mismatched groups error.
	bad := Conv2D{Filters: 10, KH: 1, KW: 1, SH: 1, SW: 1, Groups: 3}
	if _, err := bad.OutShape([]Shape{in}); err == nil {
		t.Error("groups=3 over 96 channels and 10 filters should error")
	}
}

func TestDepthwiseConvShapeAndParams(t *testing.T) {
	in := Shape{112, 112, 32}
	op := DepthwiseConv(3, 1, Same)
	out := shapeOf(t, op, in)
	if out != (Shape{112, 112, 32}) {
		t.Errorf("out = %v", out)
	}
	if p := op.Params([]Shape{in}); p != 3*3*32 {
		t.Errorf("params = %d, want 288", p)
	}
	withBias := DepthwiseConv2D{KH: 3, KW: 3, SH: 2, SW: 2, Pad: Same, Multiplier: 2, UseBias: true}
	out = shapeOf(t, withBias, in)
	if out != (Shape{56, 56, 64}) {
		t.Errorf("out = %v, want 56x56x64", out)
	}
	if p := withBias.Params([]Shape{in}); p != 3*3*32*2+64 {
		t.Errorf("params = %d", p)
	}
}

func TestDenseShapeParamsAndErrors(t *testing.T) {
	in := Shape{1, 1, 4096}
	op := FC(1000)
	out := shapeOf(t, op, in)
	if out != (Shape{1, 1, 1000}) {
		t.Errorf("out = %v", out)
	}
	if p := op.Params([]Shape{in}); p != 4096*1000+1000 {
		t.Errorf("params = %d", p)
	}
	if _, err := op.OutShape([]Shape{{H: 7, W: 7, C: 512}}); err == nil {
		t.Error("dense over non-flat input should error")
	}
	if _, err := (Dense{Units: 0}).OutShape([]Shape{in}); err == nil {
		t.Error("dense with zero units should error")
	}
}

func TestPooling(t *testing.T) {
	in := Shape{112, 112, 64}
	mp := MaxPool2D(2, 2, Valid)
	if out := shapeOf(t, mp, in); out != (Shape{56, 56, 64}) {
		t.Errorf("maxpool out = %v", out)
	}
	if mp.Params([]Shape{in}) != 0 {
		t.Error("pooling has no params")
	}
	ap := AvgPool2D(3, 2, Same)
	if out := shapeOf(t, ap, in); out != (Shape{56, 56, 64}) {
		t.Errorf("avgpool out = %v", out)
	}
	if mp.Kind() != "max_pool2d" || ap.Kind() != "avg_pool2d" {
		t.Error("pool kinds wrong")
	}
	g := GlobalAvgPool()
	if out := shapeOf(t, g, Shape{7, 7, 2048}); out != (Shape{1, 1, 2048}) {
		t.Errorf("gap out = %v", out)
	}
}

func TestBatchNormParams(t *testing.T) {
	in := Shape{56, 56, 256}
	if p := BN().Params([]Shape{in}); p != 512 {
		t.Errorf("BN params = %d, want 512", p)
	}
	scaleOnly := BatchNorm{Scale: true}
	if p := scaleOnly.Params([]Shape{in}); p != 256 {
		t.Errorf("scale-only BN params = %d, want 256", p)
	}
	if out := shapeOf(t, BN(), in); out != in {
		t.Error("BN must preserve shape")
	}
}

func TestGroupNorm(t *testing.T) {
	in := Shape{56, 56, 256}
	gn := GroupNorm{Groups: 32}
	if p := gn.Params([]Shape{in}); p != 512 {
		t.Errorf("GN params = %d, want 512", p)
	}
	if out := shapeOf(t, gn, in); out != in {
		t.Error("GN must preserve shape")
	}
}

func TestActivationFlattenDropoutZeroParams(t *testing.T) {
	in := Shape{7, 7, 512}
	for _, op := range []Op{ReLU(), Swish(), Softmax(), Sigmoid(), Dropout{Rate: 0.5}} {
		if op.Params([]Shape{in}) != 0 {
			t.Errorf("%s should have 0 params", op.Kind())
		}
	}
	fl := Flatten{}
	out := shapeOf(t, fl, in)
	if out != (Shape{1, 1, 7 * 7 * 512}) {
		t.Errorf("flatten out = %v", out)
	}
}

func TestZeroPad(t *testing.T) {
	in := Shape{224, 224, 3}
	out := shapeOf(t, Pad2D(3), in)
	if out != (Shape{230, 230, 3}) {
		t.Errorf("pad out = %v", out)
	}
	asym := ZeroPad2D{Top: 0, Bottom: 1, Left: 0, Right: 1}
	if out := shapeOf(t, asym, in); out != (Shape{225, 225, 3}) {
		t.Errorf("asym pad out = %v", out)
	}
}

func TestMergeOps(t *testing.T) {
	a := Shape{56, 56, 64}
	if out := shapeOf(t, Add{}, a, a); out != a {
		t.Errorf("add out = %v", out)
	}
	if _, err := (Add{}).OutShape([]Shape{a, {H: 56, W: 56, C: 128}}); err == nil {
		t.Error("mismatched add should error")
	}
	if _, err := (Add{}).OutShape([]Shape{a}); err == nil {
		t.Error("single-input add should error")
	}
	out := shapeOf(t, Concat{}, a, Shape{56, 56, 32}, Shape{56, 56, 16})
	if out != (Shape{56, 56, 112}) {
		t.Errorf("concat out = %v", out)
	}
	if _, err := (Concat{}).OutShape([]Shape{a, {H: 28, W: 28, C: 64}}); err == nil {
		t.Error("spatial-mismatched concat should error")
	}
	// SE gate broadcast.
	gate := Shape{1, 1, 64}
	if out := shapeOf(t, Multiply{}, a, gate); out != a {
		t.Errorf("multiply broadcast out = %v", out)
	}
	if out := shapeOf(t, Multiply{}, gate, a); out != a {
		t.Errorf("multiply broadcast (swapped) out = %v", out)
	}
	if _, err := (Multiply{}).OutShape([]Shape{a, {H: 1, W: 1, C: 32}}); err == nil {
		t.Error("channel-mismatched multiply should error")
	}
}

// Property: conv params are independent of the spatial input extent.
func TestConvParamsSpatialInvariant(t *testing.T) {
	f := func(h, w uint8, filters, k uint8) bool {
		in1 := Shape{int(h%200) + 16, int(w%200) + 16, 32}
		in2 := Shape{int(h%100) + 64, int(w%100) + 64, 32}
		op := Conv(int(filters%64)+1, int(k%5)+1, 1, Same)
		return op.Params([]Shape{in1}) == op.Params([]Shape{in2})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: 1x1 convolution params equal a dense layer over channels
// (plus identical bias handling) — the pointwise/dense equivalence.
func TestPointwiseConvEqualsDense(t *testing.T) {
	f := func(cin, cout uint8) bool {
		ci, co := int(cin)*3+1, int(cout)*3+1
		conv := Conv(co, 1, 1, Same)
		dense := FC(co)
		return conv.Params([]Shape{{14, 14, ci}}) == dense.Params([]Shape{{1, 1, ci}})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: depthwise+pointwise (separable) is never more parameters than
// the equivalent full convolution for kernels of size >= 2.
func TestSeparableNeverExceedsFullConv(t *testing.T) {
	f := func(cin, cout, k uint8) bool {
		ci, co, kk := int(cin)+8, int(cout)+8, int(k%4)+2
		in := Shape{28, 28, ci}
		full := ConvNoBias(co, kk, 1, Same).Params([]Shape{in})
		dw := DepthwiseConv(kk, 1, Same).Params([]Shape{in})
		pw := ConvNoBias(co, 1, 1, Same).Params([]Shape{in})
		return dw+pw <= full
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
