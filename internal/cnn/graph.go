package cnn

import (
	"fmt"
	"sort"
)

// Node is one operation instance inside a Model graph.
type Node struct {
	// Name is the unique layer name inside the model.
	Name string
	// Op is the operation the node performs.
	Op Op
	// Inputs are the producer nodes feeding this node.
	Inputs []*Node

	id    int
	shape Shape
}

// OutShape returns the inferred output shape of the node. It is valid
// after Model.Finalize (Builder.Build calls it).
func (n *Node) OutShape() Shape { return n.shape }

// ID returns the topological index of the node inside its model.
func (n *Node) ID() int { return n.id }

// Model is an immutable CNN computation graph plus its inferred shapes.
type Model struct {
	// Name identifies the network (e.g. "vgg16").
	Name string
	// InputShape is the model input feature-map shape.
	InputShape Shape

	nodes  []*Node
	byName map[string]*Node
	output *Node
}

// Nodes returns the graph nodes in topological order.
func (m *Model) Nodes() []*Node { return m.nodes }

// Output returns the model's final node.
func (m *Model) Output() *Node { return m.output }

// Node returns the node with the given name, or nil.
func (m *Model) Node(name string) *Node { return m.byName[name] }

// Builder incrementally constructs a Model. All Add* helpers panic-free:
// the first error is latched and returned by Build, which keeps network
// definitions readable (a pattern borrowed from strings.Builder-style
// APIs with deferred error handling).
type Builder struct {
	model   *Model
	counter map[string]int
	err     error
}

// NewBuilder starts a model with the given name and input shape and
// returns the builder together with the input node.
func NewBuilder(name string, input Shape) (*Builder, *Node) {
	b := &Builder{
		model: &Model{
			Name:       name,
			InputShape: input,
			byName:     make(map[string]*Node),
		},
		counter: make(map[string]int),
	}
	in := b.Add(InputOp{Shape: input})
	return b, in
}

// Err returns the first error recorded while building, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(err error) *Node {
	if b.err == nil {
		b.err = err
	}
	// Return a placeholder so chained building code does not nil-panic;
	// Build will report the latched error.
	return &Node{Name: "<error>", Op: InputOp{Shape: Shape{1, 1, 1}}, shape: Shape{1, 1, 1}}
}

// Add appends a node computing op over the given inputs, inferring its
// shape immediately. The node name is auto-generated from the op kind.
func (b *Builder) Add(op Op, inputs ...*Node) *Node {
	kind := op.Kind()
	b.counter[kind]++
	return b.AddNamed(fmt.Sprintf("%s_%d", kind, b.counter[kind]), op, inputs...)
}

// AddNamed is Add with an explicit unique layer name.
func (b *Builder) AddNamed(name string, op Op, inputs ...*Node) *Node {
	if b.err != nil {
		return b.fail(b.err)
	}
	if _, dup := b.model.byName[name]; dup {
		return b.fail(fmt.Errorf("cnn: duplicate layer name %q in model %q", name, b.model.Name))
	}
	ins := make([]Shape, len(inputs))
	for i, p := range inputs {
		if p == nil {
			return b.fail(fmt.Errorf("cnn: nil input to layer %q", name))
		}
		ins[i] = p.shape
	}
	out, err := op.OutShape(ins)
	if err != nil {
		return b.fail(fmt.Errorf("cnn: model %q layer %q: %w", b.model.Name, name, err))
	}
	n := &Node{Name: name, Op: op, Inputs: inputs, id: len(b.model.nodes), shape: out}
	b.model.nodes = append(b.model.nodes, n)
	b.model.byName[name] = n
	return n
}

// Build finalises the model with the given output node.
func (b *Builder) Build(output *Node) (*Model, error) {
	if b.err != nil {
		return nil, b.err
	}
	if output == nil {
		return nil, fmt.Errorf("cnn: model %q has nil output", b.model.Name)
	}
	if b.model.byName[output.Name] != output {
		return nil, fmt.Errorf("cnn: output node %q does not belong to model %q", output.Name, b.model.Name)
	}
	b.model.output = output
	return b.model, nil
}

// MustBuild is Build but panics on error; intended for the model zoo where
// a failure is a programming bug.
func (b *Builder) MustBuild(output *Node) *Model {
	m, err := b.Build(output)
	if err != nil {
		panic(err)
	}
	return m
}

// inputShapes collects the already-inferred input shapes of a node.
func inputShapes(n *Node) []Shape {
	ins := make([]Shape, len(n.Inputs))
	for i, p := range n.Inputs {
		ins[i] = p.shape
	}
	return ins
}

// TrainableParams returns the total number of trainable parameters of the
// model: the sum over all layers, exactly what the paper's Static Analyzer
// computes for the "trainable parameters" predictor.
func (m *Model) TrainableParams() int64 {
	var total int64
	for _, n := range m.nodes {
		total += n.Op.Params(inputShapes(n))
	}
	return total
}

// NeuronCount returns the total number of neurons of the model (sum of the
// output units of all computational layers), matching the "Neurons" column
// of the paper's Table I.
func (m *Model) NeuronCount() int64 {
	var total int64
	for _, n := range m.nodes {
		total += n.Op.Neurons(inputShapes(n), n.shape)
	}
	return total
}

// ActivationVolume returns the sum of the output elements of every graph
// node, including the input and shape-plumbing nodes. This is the
// convention behind the "Neurons" column of the paper's Table I (the sum
// of all Keras layer output sizes); NeuronCount is the stricter
// computational-neurons metric.
func (m *Model) ActivationVolume() int64 {
	var total int64
	for _, n := range m.nodes {
		total += n.shape.Elements()
	}
	return total
}

// FLOPs returns the estimated floating-point operations of one forward
// pass with batch size 1 (the paper lists FLOPs/MACs as future-work
// features; the analyzer supports them already).
func (m *Model) FLOPs() int64 {
	var total int64
	for _, n := range m.nodes {
		total += n.Op.FLOPs(inputShapes(n), n.shape)
	}
	return total
}

// MACs returns the multiply-accumulate count of one forward pass over
// the weighted layers (convolutions and dense layers) — together with
// FLOPs one of the extra complexity features the paper's future work
// proposes.
func (m *Model) MACs() int64 {
	var total int64
	for _, n := range m.nodes {
		switch op := n.Op.(type) {
		case Conv2D:
			g := int64(op.Groups)
			if g <= 0 {
				g = 1
			}
			total += n.shape.Elements() * int64(op.KH) * int64(op.KW) * (int64(n.Inputs[0].shape.C) / g)
		case DepthwiseConv2D:
			total += n.shape.Elements() * int64(op.KH) * int64(op.KW)
		case Dense:
			total += int64(n.Inputs[0].shape.C) * int64(op.Units)
		}
	}
	return total
}

// WeightedLayers returns the number of layers carrying trainable weights
// of convolution or dense type — the depth convention used by names like
// "ResNet50".
func (m *Model) WeightedLayers() int {
	count := 0
	for _, n := range m.nodes {
		switch n.Op.(type) {
		case Conv2D, DepthwiseConv2D, Dense:
			count++
		}
	}
	return count
}

// LayerCount returns the total number of graph nodes excluding the input.
func (m *Model) LayerCount() int { return len(m.nodes) - 1 }

// OpHistogram returns the number of nodes per op kind, sorted by kind for
// deterministic output.
func (m *Model) OpHistogram() []OpCount {
	hist := make(map[string]int)
	for _, n := range m.nodes {
		hist[n.Op.Kind()]++
	}
	out := make([]OpCount, 0, len(hist))
	for k, c := range hist {
		out = append(out, OpCount{Kind: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// OpCount pairs an op kind with its node count.
type OpCount struct {
	// Kind is the op kind identifier.
	Kind string
	// Count is the number of nodes of that kind.
	Count int
}

// Validate re-checks graph consistency: topological input ordering, shape
// inference agreement and reachability of the output.
func (m *Model) Validate() error {
	if m.output == nil {
		return fmt.Errorf("cnn: model %q has no output", m.Name)
	}
	seen := make(map[*Node]bool, len(m.nodes))
	for i, n := range m.nodes {
		if n.id != i {
			return fmt.Errorf("cnn: model %q node %q has id %d at index %d", m.Name, n.Name, n.id, i)
		}
		for _, p := range n.Inputs {
			if !seen[p] {
				return fmt.Errorf("cnn: model %q node %q uses input %q that does not precede it", m.Name, n.Name, p.Name)
			}
		}
		out, err := n.Op.OutShape(inputShapes(n))
		if err != nil {
			return fmt.Errorf("cnn: model %q node %q: %w", m.Name, n.Name, err)
		}
		if out != n.shape {
			return fmt.Errorf("cnn: model %q node %q shape mismatch: stored %v inferred %v", m.Name, n.Name, n.shape, out)
		}
		seen[n] = true
	}
	if !seen[m.output] {
		return fmt.Errorf("cnn: model %q output %q not in node list", m.Name, m.output.Name)
	}
	return nil
}
