package cnn

import (
	"strings"
	"testing"
)

// tinyNet builds a small LeNet-style model whose parameter count is easy to
// verify by hand.
func tinyNet(t *testing.T) *Model {
	t.Helper()
	b, x := NewBuilder("tiny", Shape{28, 28, 1})
	x = b.Add(Conv(6, 5, 1, Valid), x)   // 5*5*1*6+6 = 156 params, out 24x24x6
	x = b.Add(ReLU(), x)                 //
	x = b.Add(MaxPool2D(2, 2, Valid), x) // 12x12x6
	x = b.Add(Conv(16, 5, 1, Valid), x)  // 5*5*6*16+16 = 2416, out 8x8x16
	x = b.Add(ReLU(), x)
	x = b.Add(MaxPool2D(2, 2, Valid), x) // 4x4x16
	x = b.Add(Flatten{}, x)              // 256
	x = b.Add(FC(120), x)                // 256*120+120 = 30840
	x = b.Add(ReLU(), x)
	x = b.Add(FC(84), x) // 120*84+84 = 10164
	x = b.Add(ReLU(), x)
	x = b.Add(FC(10), x) // 84*10+10 = 850
	x = b.Add(Softmax(), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatalf("build tiny: %v", err)
	}
	return m
}

func TestTinyNetAnalysis(t *testing.T) {
	m := tinyNet(t)
	want := int64(156 + 2416 + 30840 + 10164 + 850)
	if p := m.TrainableParams(); p != want {
		t.Errorf("params = %d, want %d", p, want)
	}
	if l := m.WeightedLayers(); l != 5 {
		t.Errorf("weighted layers = %d, want 5", l)
	}
	if m.Output().OutShape() != (Shape{1, 1, 10}) {
		t.Errorf("output shape = %v", m.Output().OutShape())
	}
	// Neurons: conv outs + pool outs + dense outs + add-like; here:
	// 24*24*6 + 12*12*6 + 8*8*16 + 4*4*16 + 120 + 84 + 10.
	wantNeurons := int64(24*24*6 + 12*12*6 + 8*8*16 + 4*4*16 + 120 + 84 + 10)
	if n := m.NeuronCount(); n != wantNeurons {
		t.Errorf("neurons = %d, want %d", n, wantNeurons)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestAnalyzeSummary(t *testing.T) {
	m := tinyNet(t)
	s, err := Analyze(m)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if s.Name != "tiny" || s.TrainableParams != m.TrainableParams() {
		t.Errorf("summary mismatch: %+v", s)
	}
	if s.FLOPs <= 0 {
		t.Error("FLOPs should be positive")
	}
	if !strings.Contains(s.String(), "tiny") {
		t.Error("summary string should contain model name")
	}
	table := FormatTable([]Summary{s})
	if !strings.Contains(table, "Trainable Params") || !strings.Contains(table, "tiny") {
		t.Errorf("table missing columns:\n%s", table)
	}
	if _, err := Analyze(nil); err == nil {
		t.Error("Analyze(nil) should error")
	}
}

func TestBuilderErrorLatching(t *testing.T) {
	b, x := NewBuilder("bad", Shape{8, 8, 3})
	// Dense over non-flat input: latches an error but keeps returning
	// usable placeholder nodes.
	x = b.Add(FC(10), x)
	x = b.Add(ReLU(), x)
	if b.Err() == nil {
		t.Fatal("expected latched error")
	}
	if _, err := b.Build(x); err == nil {
		t.Error("Build must surface the latched error")
	}
}

func TestBuilderDuplicateName(t *testing.T) {
	b, x := NewBuilder("dup", Shape{8, 8, 3})
	x = b.AddNamed("conv", Conv(4, 3, 1, Same), x)
	_ = b.AddNamed("conv", ReLU(), x)
	if b.Err() == nil {
		t.Error("duplicate layer name should error")
	}
}

func TestBuilderForeignOutput(t *testing.T) {
	b1, x1 := NewBuilder("a", Shape{8, 8, 3})
	_, x2 := NewBuilder("b", Shape{8, 8, 3})
	_ = x1
	if _, err := b1.Build(x2); err == nil {
		t.Error("building with a foreign node should error")
	}
	if _, err := b1.Build(nil); err == nil {
		t.Error("building with nil output should error")
	}
}

func TestResidualGraph(t *testing.T) {
	b, x := NewBuilder("res", Shape{56, 56, 64})
	branch := b.Add(ConvNoBias(64, 3, 1, Same), x)
	branch = b.Add(BN(), branch)
	branch = b.Add(ReLU(), branch)
	branch = b.Add(ConvNoBias(64, 3, 1, Same), branch)
	branch = b.Add(BN(), branch)
	sum := b.Add(Add{}, x, branch)
	out := b.Add(ReLU(), sum)
	m, err := b.Build(out)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want := int64(2*(3*3*64*64) + 2*(2*64))
	if p := m.TrainableParams(); p != want {
		t.Errorf("params = %d, want %d", p, want)
	}
	if m.Output().OutShape() != (Shape{56, 56, 64}) {
		t.Errorf("output = %v", m.Output().OutShape())
	}
}

func TestOpHistogramAndLookup(t *testing.T) {
	m := tinyNet(t)
	hist := m.OpHistogram()
	counts := make(map[string]int)
	for _, h := range hist {
		counts[h.Kind] = h.Count
	}
	if counts["conv2d"] != 2 || counts["dense"] != 3 || counts["max_pool2d"] != 2 {
		t.Errorf("histogram wrong: %v", counts)
	}
	// Deterministic sorted order.
	for i := 1; i < len(hist); i++ {
		if hist[i-1].Kind >= hist[i].Kind {
			t.Error("histogram not sorted")
		}
	}
	if m.Node("dense_1") == nil {
		t.Error("node lookup by generated name failed")
	}
	if m.Node("nope") != nil {
		t.Error("lookup of missing node should be nil")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on latched error")
		}
	}()
	b, x := NewBuilder("bad", Shape{4, 4, 2})
	x = b.Add(FC(3), x) // error: not flat
	b.MustBuild(x)
}

func TestMACs(t *testing.T) {
	m := tinyNet(t)
	// conv1: 24*24*6*5*5*1; conv2: 8*8*16*5*5*6; dense: 256*120+120*84+84*10.
	want := int64(24*24*6*25 + 8*8*16*150 + 256*120 + 120*84 + 84*10)
	if got := m.MACs(); got != want {
		t.Errorf("MACs = %d, want %d", got, want)
	}
	// FLOPs of weighted layers = 2*MACs + biases; total FLOPs larger.
	if m.FLOPs() < 2*m.MACs() {
		t.Error("FLOPs must be at least twice MACs")
	}
	s, err := Analyze(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.MACs != want {
		t.Errorf("summary MACs = %d", s.MACs)
	}
}

func TestGroupedConvMACs(t *testing.T) {
	b, x := NewBuilder("grp", Shape{8, 8, 8})
	x = b.Add(cnn2Grouped(), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	// Grouped conv: out 8*8*16, per-output K = 3*3*(8/2) = 36.
	if got, want := m.MACs(), int64(8*8*16*36); got != want {
		t.Errorf("grouped MACs = %d, want %d", got, want)
	}
}

func cnn2Grouped() Conv2D {
	return Conv2D{Filters: 16, KH: 3, KW: 3, SH: 1, SW: 1, Pad: Same, Groups: 2}
}

func TestDOTExport(t *testing.T) {
	m := tinyNet(t)
	dot := m.DOT()
	for _, want := range []string{`digraph "tiny"`, "conv2d", "ellipse", "->", "params 156"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Every non-input node must have at least one incoming edge.
	edges := strings.Count(dot, " -> ")
	if edges < m.LayerCount() {
		t.Errorf("DOT has %d edges for %d layers", edges, m.LayerCount())
	}
	// Merge nodes render as diamonds.
	b, x := NewBuilder("m", Shape{4, 4, 2})
	y := b.Add(ReLU(), x)
	z := b.Add(Add{}, x, y)
	mm, err := b.Build(z)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mm.DOT(), "diamond") {
		t.Error("merge ops should render as diamonds")
	}
}
