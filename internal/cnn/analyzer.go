package cnn

import (
	"fmt"
	"strings"
)

// Summary is the Static Analyzer report for one model: the per-CNN columns
// of the paper's Table I plus the FLOP estimate the paper lists as future
// work.
type Summary struct {
	// Name is the model name.
	Name string
	// Input is the model input shape.
	Input Shape
	// Layers is the number of weighted (conv/dense) layers.
	Layers int
	// TotalNodes is the number of graph operations.
	TotalNodes int
	// Neurons is the total neuron count.
	Neurons int64
	// TrainableParams is the total trainable-parameter count.
	TrainableParams int64
	// FLOPs is the forward-pass FLOP estimate for batch size 1.
	FLOPs int64
	// MACs is the multiply-accumulate count of the weighted layers.
	MACs int64
}

// Analyze runs the Static Analyzer over a model.
func Analyze(m *Model) (Summary, error) {
	if m == nil {
		return Summary{}, fmt.Errorf("cnn: nil model")
	}
	if err := m.Validate(); err != nil {
		return Summary{}, err
	}
	return Summary{
		Name:            m.Name,
		Input:           m.InputShape,
		Layers:          m.WeightedLayers(),
		TotalNodes:      m.LayerCount(),
		Neurons:         m.NeuronCount(),
		TrainableParams: m.TrainableParams(),
		FLOPs:           m.FLOPs(),
		MACs:            m.MACs(),
	}, nil
}

// String renders the summary as a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("%-20s input=%-11s layers=%-4d neurons=%-12d params=%-12d flops=%d",
		s.Name, s.Input, s.Layers, s.Neurons, s.TrainableParams, s.FLOPs)
}

// FormatTable renders a set of summaries as an aligned text table in the
// style of the paper's Table I.
func FormatTable(rows []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-11s %7s %14s %16s %16s\n", "Model name", "Input Size", "Layers", "Neurons", "Trainable Params", "FLOPs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %-11s %7d %14d %16d %16d\n", r.Name, r.Input, r.Layers, r.Neurons, r.TrainableParams, r.FLOPs)
	}
	return b.String()
}
