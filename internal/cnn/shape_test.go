package cnn

import (
	"testing"
	"testing/quick"
)

func TestWindowOutValid(t *testing.T) {
	cases := []struct {
		in, k, s int
		want     int
	}{
		{224, 3, 1, 222},
		{224, 7, 2, 109},
		{7, 7, 1, 1},
		{5, 2, 2, 2},
		{6, 2, 2, 3},
		{32, 5, 1, 28},
	}
	for _, c := range cases {
		got, err := windowOut(c.in, c.k, c.s, Valid)
		if err != nil {
			t.Fatalf("windowOut(%d,%d,%d,valid): %v", c.in, c.k, c.s, err)
		}
		if got != c.want {
			t.Errorf("windowOut(%d,%d,%d,valid) = %d, want %d", c.in, c.k, c.s, got, c.want)
		}
	}
}

func TestWindowOutSame(t *testing.T) {
	cases := []struct {
		in, k, s int
		want     int
	}{
		{224, 3, 1, 224},
		{224, 3, 2, 112},
		{225, 3, 2, 113},
		{7, 3, 2, 4},
		{1, 3, 1, 1},
	}
	for _, c := range cases {
		got, err := windowOut(c.in, c.k, c.s, Same)
		if err != nil {
			t.Fatalf("windowOut(%d,%d,%d,same): %v", c.in, c.k, c.s, err)
		}
		if got != c.want {
			t.Errorf("windowOut(%d,%d,%d,same) = %d, want %d", c.in, c.k, c.s, got, c.want)
		}
	}
}

func TestWindowOutErrors(t *testing.T) {
	if _, err := windowOut(3, 5, 1, Valid); err == nil {
		t.Error("window larger than input with valid padding should error")
	}
	if _, err := windowOut(0, 1, 1, Same); err == nil {
		t.Error("zero input extent should error")
	}
	if _, err := windowOut(8, 3, 0, Same); err == nil {
		t.Error("zero stride should error")
	}
}

// Property: Same padding with stride 1 always preserves the extent.
func TestSamePaddingStrideOnePreserves(t *testing.T) {
	f := func(in, k uint8) bool {
		i, kk := int(in%200)+1, int(k%11)+1
		out, err := windowOut(i, kk, 1, Same)
		return err == nil && out == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: output extent is monotonically non-increasing in stride.
func TestOutputMonotoneInStride(t *testing.T) {
	f := func(in, k uint8) bool {
		i, kk := int(in%200)+8, int(k%5)+1
		prev := i + 1
		for s := 1; s <= 4; s++ {
			out, err := windowOut(i, kk, s, Same)
			if err != nil || out > prev {
				return false
			}
			prev = out
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: valid-padding output never exceeds same-padding output.
func TestValidNeverExceedsSame(t *testing.T) {
	f := func(in, k, s uint8) bool {
		i := int(in%100) + 12
		kk := int(k%7) + 1
		ss := int(s%3) + 1
		v, err1 := windowOut(i, kk, ss, Valid)
		sm, err2 := windowOut(i, kk, ss, Same)
		return err1 == nil && err2 == nil && v <= sm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamePadTotal(t *testing.T) {
	// 224 input, 7x7 stride 2 same: out 112, pad = 111*2+7-224 = 5.
	if got := samePadTotal(224, 7, 2); got != 5 {
		t.Errorf("samePadTotal(224,7,2) = %d, want 5", got)
	}
	// stride 1 k=3: pad 2.
	if got := samePadTotal(224, 3, 1); got != 2 {
		t.Errorf("samePadTotal(224,3,1) = %d, want 2", got)
	}
	// Window 1: no padding ever.
	if got := samePadTotal(17, 1, 1); got != 0 {
		t.Errorf("samePadTotal(17,1,1) = %d, want 0", got)
	}
}

func TestShapeBasics(t *testing.T) {
	s := Shape{H: 224, W: 224, C: 3}
	if s.Elements() != 224*224*3 {
		t.Errorf("Elements = %d", s.Elements())
	}
	if s.Flat() {
		t.Error("224x224x3 should not be flat")
	}
	if !(Shape{1, 1, 1000}).Flat() {
		t.Error("1x1x1000 should be flat")
	}
	if (Shape{0, 1, 1}).Valid() {
		t.Error("zero-H shape should be invalid")
	}
	if s.String() != "224x224x3" {
		t.Errorf("String = %q", s.String())
	}
	if Same.String() != "same" || Valid.String() != "valid" {
		t.Error("padding String() wrong")
	}
}
