package cnn

import (
	"fmt"
	"strings"
)

// DOT renders the model graph in Graphviz dot format: one node per
// operation labelled with its kind, output shape and parameter count;
// edges follow the dataflow. Useful for inspecting the zoo topologies.
func (m *Model) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.Name)
	b.WriteString("\trankdir=TB;\n\tnode [shape=box, fontsize=10];\n")
	for _, n := range m.nodes {
		label := fmt.Sprintf("%s\\n%s -> %s", n.Name, n.Op.Kind(), n.shape)
		if p := n.Op.Params(inputShapes(n)); p > 0 {
			label += fmt.Sprintf("\\nparams %d", p)
		}
		shape := "box"
		switch n.Op.(type) {
		case InputOp:
			shape = "ellipse"
		case Add, Multiply, Concat:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "\tn%d [label=\"%s\", shape=%s];\n", n.id, label, shape)
	}
	for _, n := range m.nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "\tn%d -> n%d;\n", in.id, n.id)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
