package profiler

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles turns on host-side pprof profiling of the pipeline
// itself (as opposed to the simulated nvprof profile of the modeled
// GPU). A non-empty cpuPath starts a CPU profile immediately; a
// non-empty memPath schedules an allocation profile snapshot for stop
// time. Either path may be empty to skip that profile.
//
// The returned stop function finishes the CPU profile and writes the
// memory profile; callers must invoke it exactly once before the
// process exits, on error paths included, or the profiles are lost.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiler: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiler: start cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("profiler: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("profiler: %w", err)
				}
				return first
			}
			// Materialize recent frees so the snapshot reflects live data.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil && first == nil {
				first = fmt.Errorf("profiler: write mem profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("profiler: %w", err)
			}
		}
		return first
	}, nil
}
