package profiler

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartProfilesWritesBothFiles exercises the full start/stop cycle
// and requires both profile files to exist and be non-empty.
func TestStartProfilesWritesBothFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestStartProfilesNoop requires empty paths to produce a working no-op
// stop function.
func TestStartProfilesNoop(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartProfilesBadPath requires an unwritable CPU-profile path to
// fail up front rather than at stop time.
func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"), ""); err == nil {
		t.Fatal("expected error for unwritable cpu profile path")
	}
}
