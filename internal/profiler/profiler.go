// Package profiler is an nvprof-style profiling harness over the GPU
// simulator. It produces the per-kernel tables nvprof prints, the
// measured IPC the paper uses as its training response, and — crucially
// for the paper's Table IV — the *cost* of profiling: nvprof replays every
// kernel once per metric pass, so profiling a CNN takes minutes even
// though inference takes milliseconds. That asymmetry is what the paper's
// approach exploits.
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/gpusim"
	"cnnperf/internal/ptxgen"
)

// Config tunes the profiling cost model.
type Config struct {
	// StartupSec is the fixed cost of launching the framework, loading
	// the model and attaching the profiler (default 45 s).
	StartupSec float64
	// ReplayPasses is the number of metric-collection passes nvprof
	// needs to gather all counters (default 30).
	ReplayPasses int
	// IterationsPerPass is the number of timed inference iterations per
	// pass (default 25).
	IterationsPerPass int
	// Sim configures the underlying GPU simulator.
	Sim gpusim.Config
}

func (c Config) startup() float64 {
	if c.StartupSec <= 0 {
		return 45
	}
	return c.StartupSec
}

func (c Config) passes() int {
	if c.ReplayPasses <= 0 {
		return 30
	}
	return c.ReplayPasses
}

func (c Config) iters() int {
	if c.IterationsPerPass <= 0 {
		return 25
	}
	return c.IterationsPerPass
}

// KernelRow is one line of the nvprof-style kernel table.
type KernelRow struct {
	// Kernel is the kernel name.
	Kernel string
	// TimeSec is the simulated kernel duration.
	TimeSec float64
	// TimePct is the share of total GPU time.
	TimePct float64
	// Instructions is the dynamic instruction count.
	Instructions int64
	// IPC is the kernel's simulated instructions per cycle.
	IPC float64
	// AchievedOccupancy is the resident-warp fraction the launch reaches
	// (nvprof's achieved_occupancy metric).
	AchievedOccupancy float64
	// DRAMThroughputGBs is the kernel's off-chip traffic rate
	// (nvprof's dram_read+write_throughput).
	DRAMThroughputGBs float64
	// MemoryBound reports whether DRAM dominated the kernel.
	MemoryBound bool
}

// Profile is the result of profiling one CNN on one GPU.
type Profile struct {
	// Model is the profiled CNN.
	Model string
	// GPU is the device name.
	GPU string
	// InferenceSec is the simulated single-inference latency.
	InferenceSec float64
	// IPC is the measured overall instructions-per-cycle — the response
	// variable y of the paper's training dataset.
	IPC float64
	// Instructions is the total dynamic instruction count.
	Instructions int64
	// ProfilingCostSec is the simulated wall-clock cost of obtaining
	// this profile with nvprof (the paper's t_p).
	ProfilingCostSec float64
	// Rows is the per-kernel breakdown sorted by time, descending.
	Rows []KernelRow
}

// Run profiles a compiled CNN on one GPU: it performs the dynamic code
// analysis, simulates the execution, and prices the nvprof session.
func Run(prog *ptxgen.Program, spec gpu.Spec, cfg Config) (*Profile, error) {
	rep, err := dca.AnalyzeProgram(prog, dca.Options{})
	if err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	return RunWithReport(rep, spec, cfg)
}

// RunWithReport profiles using an existing DCA report (avoids re-analysis
// when sweeping GPUs).
func RunWithReport(rep *dca.Report, spec gpu.Spec, cfg Config) (*Profile, error) {
	sim, err := gpusim.Simulate(rep, spec, cfg.Sim)
	if err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	clockHz := spec.BoostClockMHz * 1e6
	if cfg.Sim.ClockMHz > 0 {
		clockHz = cfg.Sim.ClockMHz * 1e6
	}
	p := &Profile{
		Model:        sim.Model,
		GPU:          sim.GPU,
		InferenceSec: sim.RuntimeSec,
		IPC:          sim.IPC,
		Instructions: sim.Instructions,
	}
	p.ProfilingCostSec = cfg.startup() +
		float64(cfg.passes())*float64(cfg.iters())*sim.RuntimeSec

	// Percentages are computed against the pre-noise kernel total so
	// they sum to 100 like nvprof's table.
	var kernelCycles float64
	for _, kt := range sim.Kernels {
		kernelCycles += kt.Cycles
	}
	for i, kt := range sim.Kernels {
		kr := rep.Kernels[i]
		row := KernelRow{
			Kernel:       kt.Kernel,
			TimeSec:      kt.Cycles / clockHz,
			TimePct:      100 * kt.Cycles / kernelCycles,
			Instructions: kr.Executed,
			MemoryBound:  kt.MemoryBound,
		}
		if kt.Cycles > 0 {
			row.IPC = float64(kr.Executed) / kt.Cycles
			row.DRAMThroughputGBs = kt.DRAMBytes / (kt.Cycles / clockHz) / 1e9
		}
		// Achieved occupancy: resident warps over the SM array's warp
		// slots, capped at 1 (mirrors the simulator's occupancy model).
		warps := float64(kr.Threads) / 32
		slots := float64(spec.SMs) * 64
		row.AchievedOccupancy = warps / slots
		if row.AchievedOccupancy > 1 {
			row.AchievedOccupancy = 1
		}
		p.Rows = append(p.Rows, row)
	}
	sort.Slice(p.Rows, func(i, j int) bool { return p.Rows[i].TimeSec > p.Rows[j].TimeSec })
	return p, nil
}

// Format renders the profile as an nvprof-like text report, listing up to
// topN kernels (0 = all).
func (p *Profile) Format(topN int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "==PROF== Profiling %s on %s\n", p.Model, p.GPU)
	fmt.Fprintf(&b, "==PROF== Inference: %.6f s   IPC: %.2f   Instructions: %d\n",
		p.InferenceSec, p.IPC, p.Instructions)
	fmt.Fprintf(&b, "==PROF== Profiling session cost: %.1f s\n", p.ProfilingCostSec)
	fmt.Fprintf(&b, "%8s %12s %14s %10s %6s %10s  %s\n", "Time(%)", "Time(s)", "Instructions", "IPC", "Occ", "DRAM GB/s", "Name")
	rows := p.Rows
	if topN > 0 && topN < len(rows) {
		rows = rows[:topN]
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%7.2f%% %12.6f %14d %10.2f %6.2f %10.1f  %s\n",
			r.TimePct, r.TimeSec, r.Instructions, r.IPC, r.AchievedOccupancy, r.DRAMThroughputGBs, r.Kernel)
	}
	return b.String()
}
