package profiler

import (
	"math"
	"strings"
	"testing"

	"cnnperf/internal/cnn"
	"cnnperf/internal/dca"
	"cnnperf/internal/gpu"
	"cnnperf/internal/ptxgen"
)

func compile(t *testing.T) *ptxgen.Program {
	t.Helper()
	b, x := cnn.NewBuilder("profnet", cnn.Shape{H: 16, W: 16, C: 3})
	x = b.Add(cnn.ConvNoBias(8, 3, 1, cnn.Same), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(10), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ptxgen.Compile(m, ptxgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRunProducesProfile(t *testing.T) {
	prog := compile(t)
	spec := gpu.MustLookup("gtx1080ti")
	p, err := Run(prog, spec, Config{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if p.Model != "profnet" || p.GPU != spec.Name {
		t.Errorf("identity: %+v", p)
	}
	if p.IPC <= 0 || p.InferenceSec <= 0 || p.Instructions <= 0 {
		t.Errorf("bad measurements: %+v", p)
	}
	if len(p.Rows) != len(prog.Launches) {
		t.Errorf("rows = %d, want %d", len(p.Rows), len(prog.Launches))
	}
	// Rows sorted by time descending; percentages sum to ~100.
	var pct float64
	for i, r := range p.Rows {
		pct += r.TimePct
		if i > 0 && r.TimeSec > p.Rows[i-1].TimeSec {
			t.Error("rows not sorted by time")
		}
	}
	if math.Abs(pct-100) > 0.5 {
		t.Errorf("time percentages sum to %f", pct)
	}
}

func TestProfilingCostModel(t *testing.T) {
	prog := compile(t)
	spec := gpu.MustLookup("v100s")
	rep, err := dca.AnalyzeProgram(prog, dca.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{StartupSec: 10, ReplayPasses: 5, IterationsPerPass: 4}
	p, err := RunWithReport(rep, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 + 5*4*p.InferenceSec
	if math.Abs(p.ProfilingCostSec-want) > 1e-9 {
		t.Errorf("profiling cost = %f, want %f", p.ProfilingCostSec, want)
	}
	// Profiling must dwarf a single inference — the Table IV asymmetry.
	if p.ProfilingCostSec < 100*p.InferenceSec {
		t.Errorf("profiling (%f s) should dwarf inference (%f s)", p.ProfilingCostSec, p.InferenceSec)
	}
}

func TestProfilingCostDefaultsAndGrowth(t *testing.T) {
	prog := compile(t)
	rep, err := dca.AnalyzeProgram(prog, dca.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunWithReport(rep, gpu.MustLookup("v100s"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunWithReport(rep, gpu.MustLookup("quadrop1000"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Same model: profiling the slower GPU costs at least as much.
	if slow.ProfilingCostSec < fast.ProfilingCostSec {
		t.Errorf("P1000 profiling (%f) cheaper than V100S (%f)", slow.ProfilingCostSec, fast.ProfilingCostSec)
	}
	// Defaults: startup 45 s floor.
	if fast.ProfilingCostSec < 45 {
		t.Errorf("default startup missing: %f", fast.ProfilingCostSec)
	}
}

func TestFormat(t *testing.T) {
	prog := compile(t)
	p, err := Run(prog, gpu.MustLookup("gtx1080ti"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	text := p.Format(2)
	if !strings.Contains(text, "==PROF== Profiling profnet") {
		t.Errorf("missing header:\n%s", text)
	}
	if strings.Count(text, "fusion_") != 2 {
		t.Errorf("topN=2 should print 2 kernels:\n%s", text)
	}
	all := p.Format(0)
	if strings.Count(all, "fusion_") != len(p.Rows) {
		t.Error("topN=0 should print all kernels")
	}
}

func TestRunErrorPropagation(t *testing.T) {
	prog := compile(t)
	if _, err := Run(prog, gpu.Spec{}, Config{}); err == nil {
		t.Error("invalid spec should error")
	}
	if _, err := RunWithReport(nil, gpu.MustLookup("t4"), Config{}); err == nil {
		t.Error("nil report should error")
	}
}

func TestExtendedKernelMetrics(t *testing.T) {
	prog := compile(t)
	p, err := Run(prog, gpu.MustLookup("gtx1080ti"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Rows {
		if r.AchievedOccupancy <= 0 || r.AchievedOccupancy > 1 {
			t.Errorf("%s: occupancy %f outside (0,1]", r.Kernel, r.AchievedOccupancy)
		}
		if r.DRAMThroughputGBs < 0 {
			t.Errorf("%s: negative DRAM throughput", r.Kernel)
		}
		// Throughput cannot exceed the device's peak bandwidth by more
		// than rounding.
		if r.DRAMThroughputGBs > 484*1.01 {
			t.Errorf("%s: DRAM throughput %f exceeds peak", r.Kernel, r.DRAMThroughputGBs)
		}
	}
	text := p.Format(3)
	if !strings.Contains(text, "DRAM GB/s") || !strings.Contains(text, "Occ") {
		t.Error("format missing extended metric columns")
	}
}
