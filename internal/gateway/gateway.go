package gateway

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cnnperf/internal/obs"
	"cnnperf/internal/server"
)

// Config collects the gateway knobs.
type Config struct {
	// Addr is the listen address (default ":8076").
	Addr string
	// Backends are the replica base URLs (e.g. "http://127.0.0.1:8077").
	// At least one is required.
	Backends []string
	// VNodes is the virtual-node count per backend on the hash ring
	// (<= 0 selects 128).
	VNodes int
	// ProbeInterval is the health-check period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe (or request transport)
	// failures that eject a backend from the ring (default 3).
	FailThreshold int
	// ReviveThreshold is the consecutive probe successes that re-admit
	// an ejected backend (default 2).
	ReviveThreshold int
	// RetryBudget is the maximum proxy attempts per request, including
	// the first (default 3, clamped to the backend count).
	RetryBudget int
	// RetryBackoff is the pause before the first retry, doubling per
	// subsequent retry (default 10ms).
	RetryBackoff time.Duration
	// Timeout bounds one proxy attempt (default 60s).
	Timeout time.Duration
	// MaxBodyBytes bounds the request body (default 1 MiB). Bodies are
	// buffered whole: the routing key is a function of the content, and
	// retries need to replay it.
	MaxBodyBytes int64
	// Logger receives structured logs; nil disables logging.
	Logger *obs.Logger
	// SlowRequest logs completed requests slower than this at warn
	// level; <= 0 disables the check.
	SlowRequest time.Duration
	// Transport overrides the proxy transport (tests); nil selects a
	// dedicated transport with sane pooling.
	Transport http.RoundTripper
	// DisableFlightRecorder turns off the always-on trace capture. The
	// recorder is on by default: every proxied request is traced
	// (gw.route root, one gw.attempt child per proxy attempt) and
	// tail-retained for GET /debug/flightrecorder.
	DisableFlightRecorder bool
	// FlightRecorder tunes the trace capture (zero values select the
	// obs.FlightRecorderConfig defaults; Process defaults to "gateway").
	FlightRecorder obs.FlightRecorderConfig
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8076"
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReviveThreshold <= 0 {
		c.ReviveThreshold = 2
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Gateway is the sharded router: a hash ring of replicas, a health
// prober, and the proxy loop. Construct with New, serve Handler, stop
// with Drain then Close.
type Gateway struct {
	cfg         Config
	ring        *Ring
	backends    map[string]*backendState
	backendList []*backendState // stable order for probing
	metrics     *gwMetrics
	client      *http.Client
	fr          *obs.FlightRecorder
	handler     http.Handler

	gate *drainGate

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeDone   chan struct{}

	closeOnce sync.Once
}

// New builds a gateway over the configured backends. Backend URLs are
// normalized (scheme required, trailing slash stripped) and
// duplicates rejected.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: at least one backend is required")
	}
	normalized := make([]string, 0, len(cfg.Backends))
	seen := make(map[string]struct{}, len(cfg.Backends))
	for _, raw := range cfg.Backends {
		u, err := url.Parse(strings.TrimSpace(raw))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("gateway: backend %q is not an absolute http(s) URL", raw)
		}
		b := u.Scheme + "://" + u.Host + strings.TrimSuffix(u.Path, "/")
		if _, dup := seen[b]; dup {
			return nil, fmt.Errorf("gateway: duplicate backend %q", b)
		}
		seen[b] = struct{}{}
		normalized = append(normalized, b)
	}
	sort.Strings(normalized)
	cfg.Backends = normalized

	ring := NewRing(cfg.VNodes)
	g := &Gateway{
		cfg:      cfg,
		ring:     ring,
		backends: make(map[string]*backendState, len(normalized)),
		metrics:  newGwMetrics(ring, normalized),
		gate:     newDrainGate(),
	}
	for _, b := range normalized {
		st := newBackendState(b)
		g.backends[b] = st
		g.backendList = append(g.backendList, st)
		ring.Add(b)
	}
	transport := cfg.Transport
	if transport == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = 64
		transport = t
	}
	// Per-attempt deadlines come from request contexts; the client
	// itself must not add a second, fixed timeout.
	g.client = &http.Client{Transport: transport}
	if !cfg.DisableFlightRecorder {
		frCfg := cfg.FlightRecorder
		if frCfg.Process == "" {
			frCfg.Process = "gateway"
		}
		g.fr = obs.NewFlightRecorder(frCfg)
		g.fr.RegisterMetrics(g.metrics.reg)
	}
	g.probeCtx, g.probeCancel = context.WithCancel(context.Background())
	g.probeDone = make(chan struct{})
	go g.probeLoop(g.probeCtx)
	g.handler = g.middleware(g.routes())
	return g, nil
}

// FlightRecorder returns the always-on trace capture, or nil when
// disabled.
func (g *Gateway) FlightRecorder() *obs.FlightRecorder { return g.fr }

// Handler returns the fully-wrapped HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.handler }

// Registry exposes the gateway metrics registry (tests, embedding).
func (g *Gateway) Registry() *obs.Registry { return g.metrics.reg }

// Ring exposes the routing ring (tests, admin tooling).
func (g *Gateway) Ring() *Ring { return g.ring }

// Drain stops admitting requests (503) and waits for in-flight ones.
func (g *Gateway) Drain(ctx context.Context) error { return g.gate.drain(ctx) }

// Close stops the health prober and releases idle connections.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		g.probeCancel()
		<-g.probeDone
		g.client.CloseIdleConnections()
	})
}

// ListenAndServe serves until ctx is cancelled, then drains and stops.
func (g *Gateway) ListenAndServe(ctx context.Context) error {
	httpSrv := &http.Server{
		Addr:              g.cfg.Addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errCh:
		g.Close()
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), g.cfg.Timeout+time.Second)
	defer cancel()
	derr := g.Drain(drainCtx)
	serr := httpSrv.Shutdown(drainCtx)
	g.Close()
	if derr != nil {
		return derr
	}
	return serr
}

func (g *Gateway) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", g.handleProxy)
	mux.HandleFunc("POST /v1/lint", g.handleProxy)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	if g.fr != nil {
		mux.HandleFunc("GET /debug/flightrecorder", g.handleFlightRecorder)
	}
	mux.HandleFunc("/", g.handleNotFound)
	return mux
}

// middleware applies the cross-cutting policy: drain gating,
// request-id echo, in-flight accounting, access logging and panic
// containment. Body bounding happens in the proxy handler (it buffers
// the body anyway).
func (g *Gateway) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		rid := requestID(r)
		sw.Header().Set("X-Request-ID", rid)
		ctx := obs.WithRequestID(r.Context(), rid)
		r = r.WithContext(ctx)
		if !g.gate.enter() {
			g.metrics.rejected.Inc()
			sw.Header().Set("Retry-After", "1")
			writeError(ctx, sw, http.StatusServiceUnavailable, "draining", "gateway is shutting down")
			return
		}
		defer g.gate.exit()
		g.metrics.inFlight.Add(1)
		defer g.metrics.inFlight.Add(-1)
		start := time.Now()
		// The flight recorder traces every proxied request: a gw.route
		// root (adopting an inbound traceparent when the caller already
		// started a trace) with one gw.attempt child per proxy attempt.
		var frt *obs.Tracer
		var root *obs.Span
		if g.fr != nil && r.Method == http.MethodPost &&
			(r.URL.Path == "/v1/predict" || r.URL.Path == "/v1/lint") {
			frt = g.fr.StartRequest()
			fctx := obs.WithTracer(r.Context(), frt)
			if tp := r.Header.Get(obs.TraceparentHeader); tp != "" {
				if tc, err := obs.ParseTraceparent(tp); err == nil {
					fctx = obs.WithRemoteParent(fctx, tc)
				}
			}
			fctx, root = obs.Start(fctx, "gw.route",
				obs.String("path", r.URL.Path), obs.String("request_id", rid))
			r = r.WithContext(fctx)
		}
		defer func() {
			if p := recover(); p != nil {
				g.cfg.Logger.ErrorCtx(ctx, "gateway panic",
					obs.String("path", r.URL.Path), obs.String("panic", fmt.Sprint(p)))
				if !sw.wrote {
					writeError(ctx, sw, http.StatusInternalServerError, "internal", fmt.Sprintf("internal error: %v", p))
				}
			}
			dur := time.Since(start)
			g.cfg.Logger.InfoCtx(ctx, "gw request",
				obs.String("method", r.Method), obs.String("path", r.URL.Path),
				obs.Int("status", sw.status), obs.Duration("dur", dur.Round(time.Microsecond)))
			if g.cfg.SlowRequest > 0 && dur > g.cfg.SlowRequest {
				g.cfg.Logger.WarnCtx(ctx, "slow gw request",
					obs.String("path", r.URL.Path), obs.Int("status", sw.status),
					obs.Duration("dur", dur.Round(time.Microsecond)))
			}
			if frt != nil {
				root.SetAttr(obs.Int("status", sw.status))
				root.End()
				g.fr.Finish(frt, obs.TraceMeta{
					Endpoint:  strings.TrimPrefix(r.URL.Path, "/v1/"),
					RequestID: rid,
					Status:    sw.status,
					Err:       sw.status >= 500,
					Duration:  dur,
				})
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// RoutingKey computes the consistent-hash key for a request body on
// path: the server's own batching dedupe content key when the body
// parses as one, a content hash of the raw bytes otherwise (malformed
// payloads still route deterministically, and the owning backend
// produces the error envelope — the gateway never duplicates
// validation).
func RoutingKey(path string, body []byte) string {
	switch path {
	case "/v1/predict":
		var req server.PredictRequest
		if err := json.Unmarshal(body, &req); err == nil && (req.Model != "") != (req.PTX != "") {
			return req.ContentKey()
		}
	case "/v1/lint":
		var req server.LintRequest
		if err := json.Unmarshal(body, &req); err == nil && (req.Model != "") != (req.PTX != "") {
			return req.ContentKey()
		}
	}
	sum := sha256.Sum256(body)
	return "raw\x00" + hex.EncodeToString(sum[:])
}

func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(ctx, w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(ctx, w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
		return
	}
	g.proxy(ctx, w, r, RoutingKey(r.URL.Path, body), body)
}

// proxy runs the retry loop for one request: walk the key's ring
// sequence, retrying transport failures with exponential backoff
// under the budget, re-routing at most one draining 503, and
// forwarding the first real response verbatim.
func (g *Gateway) proxy(ctx context.Context, w http.ResponseWriter, r *http.Request, key string, body []byte) {
	candidates := g.ring.Sequence(key, g.cfg.RetryBudget)
	if len(candidates) == 0 {
		g.metrics.noBackend.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(ctx, w, http.StatusServiceUnavailable, "no_backends", "no healthy backend available")
		return
	}
	var (
		attempts     int
		drainRetried bool
		lastErr      error
	)
	for i := 0; i < len(candidates); i++ {
		backend := candidates[i]
		st := g.backends[backend]
		if st == nil || !st.enter() {
			continue // draining out of the fleet; try its successor
		}
		if attempts > 0 {
			g.metrics.retries.Inc()
			backoff := g.cfg.RetryBackoff << (attempts - 1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				st.exit()
				writeError(ctx, w, http.StatusGatewayTimeout, "timeout", "request deadline exceeded during retry backoff")
				return
			}
		}
		attempts++
		start := time.Now()
		attemptCtx, asp := obs.Start(ctx, "gw.attempt",
			obs.String("backend", backend), obs.Int("attempt", attempts),
			obs.Bool("reroute", drainRetried))
		resp, err := g.attempt(attemptCtx, backend, r, body)
		if err != nil {
			asp.SetAttr(obs.String("err", err.Error()))
			asp.End()
			st.exit()
			lastErr = err
			// A dead inbound context means the client hung up or its
			// deadline passed mid-attempt — that says nothing about the
			// backend, so it must not count as a transport error or
			// feed the ejection state machine.
			if ctx.Err() != nil {
				break
			}
			g.metrics.transport.With(backend).Inc()
			g.applyTransition(st, st.reportTransportFailure(g.cfg.FailThreshold))
			g.cfg.Logger.WarnCtx(ctx, "proxy attempt failed",
				obs.String("backend", backend), obs.String("err", err.Error()))
			continue
		}
		// Read the whole response: retries and the draining check need
		// it, and bodies here are small JSON documents.
		respBody, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		st.exit()
		if readErr != nil {
			asp.SetAttr(obs.String("err", readErr.Error()))
			asp.End()
			lastErr = fmt.Errorf("reading response from %s: %w", backend, readErr)
			if ctx.Err() != nil {
				break
			}
			g.metrics.transport.With(backend).Inc()
			continue
		}
		g.metrics.record(backend, resp.StatusCode, time.Since(start))
		asp.SetAttr(obs.Int("status", resp.StatusCode))
		asp.End()
		// A replica that is shutting down answers 503 with the
		// "draining" envelope; the request is re-routed to the next
		// healthy replica exactly once. A second draining answer (or a
		// 503 with any other meaning) is forwarded as-is.
		if resp.StatusCode == http.StatusServiceUnavailable && !drainRetried &&
			i+1 < len(candidates) && isDrainingEnvelope(respBody) {
			drainRetried = true
			g.metrics.drainRetries.Inc()
			g.cfg.Logger.InfoCtx(ctx, "re-routing draining 503",
				obs.String("backend", backend))
			continue
		}
		forwardResponse(w, resp, respBody, backend, attempts)
		return
	}
	msg := "all proxy attempts failed"
	if lastErr != nil {
		msg = fmt.Sprintf("all proxy attempts failed: %v", lastErr)
	}
	if ctx.Err() != nil {
		writeError(ctx, w, http.StatusGatewayTimeout, "timeout", msg)
		return
	}
	g.metrics.noBackend.Inc()
	w.Header().Set("Retry-After", "1")
	writeError(ctx, w, http.StatusServiceUnavailable, "no_backends", msg)
}

// attempt issues one proxied request to one backend.
func (g *Gateway) attempt(ctx context.Context, backend string, r *http.Request, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.Timeout)
	defer cancel()
	u := backend + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyProxyHeaders(req.Header, r.Header)
	// The edge request id and the trace position propagate to the
	// backend: replica access logs and error envelopes share the
	// gateway's request id, and the replica's spans hang off this
	// attempt's span in the distributed trace.
	req.Header.Set("X-Request-ID", obs.RequestID(ctx))
	if tp := obs.Traceparent(ctx); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		// The per-attempt context is released when this function
		// returns; surface the cause, not the wrapper.
		return nil, fmt.Errorf("proxy %s: %w", backend, err)
	}
	return resp, nil
}

// proxyHeaderAllowlist are the request headers forwarded to backends.
var proxyHeaderAllowlist = []string{"Content-Type", "Accept", "Accept-Encoding"}

func copyProxyHeaders(dst, src http.Header) {
	for _, h := range proxyHeaderAllowlist {
		if vs := src.Values(h); len(vs) > 0 {
			dst[h] = append([]string(nil), vs...)
		}
	}
}

// hopHeaders are never forwarded from backend responses (RFC 9110
// hop-by-hop set plus Content-Length, which the writer recomputes).
var hopHeaders = map[string]struct{}{
	"Connection": {}, "Keep-Alive": {}, "Proxy-Authenticate": {},
	"Proxy-Authorization": {}, "Te": {}, "Trailer": {},
	"Transfer-Encoding": {}, "Upgrade": {}, "Content-Length": {},
	// The gateway already set the response id from its own middleware;
	// the backend echoes the same id, so dropping it avoids duplicates.
	"X-Request-Id": {},
}

// forwardResponse relays a backend response verbatim: status, headers
// (minus hop-by-hop) and the exact body bytes, plus the gateway's own
// X-Gateway-* debugging headers.
func forwardResponse(w http.ResponseWriter, resp *http.Response, body []byte, backend string, attempts int) {
	h := w.Header()
	for k, vs := range resp.Header {
		if _, hop := hopHeaders[http.CanonicalHeaderKey(k)]; hop {
			continue
		}
		h[k] = append([]string(nil), vs...)
	}
	h.Set("X-Gateway-Backend", backend)
	h.Set("X-Gateway-Attempts", strconv.Itoa(attempts))
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// isDrainingEnvelope reports whether a 503 body is the server's
// structured draining envelope.
func isDrainingEnvelope(body []byte) bool {
	var env server.ErrorEnvelope
	return json.Unmarshal(body, &env) == nil && env.Error.Code == "draining"
}

// BackendHealth is one backend's state in the /healthz document.
type BackendHealth struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	InRing   bool   `json:"in_ring"`
}

// HealthzResponse is the gateway /healthz document.
type HealthzResponse struct {
	Status   string          `json:"status"` // ok | degraded | down
	RingSize int             `json:"ring_size"`
	Backends []BackendHealth `json:"backends"`
}

func (g *Gateway) healthz() HealthzResponse {
	out := HealthzResponse{RingSize: g.ring.Size()}
	healthyCount := 0
	for _, st := range g.backendList {
		healthy, draining := st.snapshot()
		inRing := g.ring.Has(st.url)
		if healthy && !draining {
			healthyCount++
		}
		out.Backends = append(out.Backends, BackendHealth{
			URL: st.url, Healthy: healthy, Draining: draining, InRing: inRing,
		})
	}
	switch {
	case healthyCount == len(g.backendList):
		out.Status = "ok"
	case healthyCount > 0:
		out.Status = "degraded"
	default:
		out.Status = "down"
	}
	return out
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hz := g.healthz()
	status := http.StatusOK
	if hz.Status == "down" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, hz)
}

// handleFlightRecorder serves the retained traces as one Chrome trace
// document; ?trace=<32-hex id> narrows it to a single distributed
// trace (for `obscheck stitch`).
func (g *Gateway) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = g.fr.WriteChromeTrace(w, r.URL.Query().Get("trace"))
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	w.WriteHeader(http.StatusOK)
	_ = g.metrics.writePrometheus(w)
}

func (g *Gateway) handleNotFound(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/predict", "/v1/lint":
		w.Header().Set("Allow", http.MethodPost)
		writeError(r.Context(), w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s requires POST", r.URL.Path))
		return
	case "/healthz", "/metrics":
		w.Header().Set("Allow", http.MethodGet)
		writeError(r.Context(), w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s requires GET", r.URL.Path))
		return
	}
	writeError(r.Context(), w, http.StatusNotFound, "not_found",
		fmt.Sprintf("no route for %s %s", r.Method, r.URL.Path))
}

// --- small local copies of the server's request plumbing ---
// (the types are unexported there; duplicating ~60 lines keeps the
// packages independent and the gateway deployable without the server)

type drainGate struct {
	mu       sync.Mutex
	draining bool
	inflight int
	idle     chan struct{}
}

func newDrainGate() *drainGate { return &drainGate{idle: make(chan struct{})} }

func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

func (g *drainGate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.draining && g.inflight == 0 {
		select {
		case <-g.idle:
		default:
			close(g.idle)
		}
	}
}

func (g *drainGate) drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	if g.inflight == 0 {
		select {
		case <-g.idle:
		default:
			close(g.idle)
		}
	}
	g.mu.Unlock()
	select {
	case <-g.idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("gateway: drain: %w", ctx.Err())
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if w.wrote {
		return
	}
	w.wrote = true
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); validRequestID(id) {
		return id
	}
	return obs.NewRequestID()
}

func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(ctx context.Context, w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, server.ErrorEnvelope{Error: server.ErrorBody{
		Code: code, Message: msg, RequestID: obs.RequestID(ctx),
	}})
}
