package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"cnnperf/internal/obs"
)

// backendState is the per-replica health and draining state machine.
//
//	healthy --(FailThreshold consecutive probe failures)--> ejected
//	ejected --(ReviveThreshold consecutive probe successes)--> healthy
//	any     --(RemoveBackend)--> draining (terminal; never probed back in)
//
// Backends start healthy and in the ring: a gateway must serve the
// moment it boots, and a genuinely dead backend is caught either by
// the first probe round or by the request retry path, whichever runs
// first.
type backendState struct {
	url string

	mu         sync.Mutex
	healthy    bool
	draining   bool
	consecFail int
	consecOK   int
	inflight   int
	idle       chan struct{} // closed when draining with no in-flight proxies
}

func newBackendState(url string) *backendState {
	return &backendState{url: url, healthy: true, idle: make(chan struct{})}
}

// enter registers one in-flight proxied request; false while draining
// (the router must pick another replica).
func (b *backendState) enter() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.draining {
		return false
	}
	b.inflight++
	return true
}

// exit retires one in-flight proxied request.
func (b *backendState) exit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inflight--
	if b.draining && b.inflight == 0 {
		select {
		case <-b.idle:
		default:
			close(b.idle)
		}
	}
}

// startDrain flips the backend into the terminal draining state and
// reports whether there is in-flight work left to wait for.
func (b *backendState) startDrain() (busy bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.draining {
		b.draining = true
		if b.inflight == 0 {
			close(b.idle)
		}
	}
	return b.inflight > 0
}

// probeResult applies one health-probe outcome and reports the state
// transition it caused, if any.
type transition int

const (
	noTransition transition = iota
	ejected
	readmitted
)

func (b *backendState) probeResult(ok bool, failThreshold, reviveThreshold int) transition {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.draining {
		return noTransition
	}
	if ok {
		b.consecFail = 0
		b.consecOK++
		if !b.healthy && b.consecOK >= reviveThreshold {
			b.healthy = true
			return readmitted
		}
		return noTransition
	}
	b.consecOK = 0
	b.consecFail++
	if b.healthy && b.consecFail >= failThreshold {
		b.healthy = false
		return ejected
	}
	return noTransition
}

// reportTransportFailure feeds a request-path connection failure into
// the same counter a failed probe would bump, so a dead backend is
// ejected after FailThreshold failed requests even between probe
// rounds. Request successes deliberately do not feed back: only the
// prober (which checks /healthz, not an arbitrary handler) may
// re-admit.
func (b *backendState) reportTransportFailure(failThreshold int) transition {
	return b.probeResult(false, failThreshold, 1)
}

func (b *backendState) snapshot() (healthy, draining bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy, b.draining
}

// probeLoop probes every backend each interval until ctx is done.
func (g *Gateway) probeLoop(ctx context.Context) {
	defer close(g.probeDone)
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			g.probeAll(ctx)
		}
	}
}

// probeAll runs one probe round over all backends in parallel and
// applies ejections/re-admissions to the ring.
func (g *Gateway) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.backendList {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			g.probeOne(ctx, b)
		}(b)
	}
	wg.Wait()
}

func (g *Gateway) probeOne(ctx context.Context, b *backendState) {
	if _, draining := b.snapshot(); draining {
		return
	}
	ok := g.probe(ctx, b.url)
	result := "ok"
	if !ok {
		result = "fail"
	}
	g.metrics.probes.With(b.url, result).Inc()
	g.applyTransition(b, b.probeResult(ok, g.cfg.FailThreshold, g.cfg.ReviveThreshold))
}

// applyTransition moves a backend in or out of the ring to match a
// state-machine transition.
func (g *Gateway) applyTransition(b *backendState, t transition) {
	switch t {
	case ejected:
		g.ring.Remove(b.url)
		g.metrics.ejections.With(b.url).Inc()
		g.metrics.healthy.With(b.url).Set(0)
		g.cfg.Logger.Warn("backend ejected", obs.String("backend", b.url))
	case readmitted:
		g.ring.Add(b.url)
		g.metrics.readmissions.With(b.url).Inc()
		g.metrics.healthy.With(b.url).Set(1)
		g.cfg.Logger.Info("backend readmitted", obs.String("backend", b.url))
	}
}

// probe issues one GET /healthz with the probe timeout.
func (g *Gateway) probe(ctx context.Context, backend string) bool {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	// Drain a bounded amount so the connection is reusable.
	_, _ = io.CopyN(io.Discard, resp.Body, 4096)
	return resp.StatusCode == http.StatusOK
}

// RemoveBackend gracefully drains one replica out of the fleet: it
// leaves the ring immediately (no new requests route to it), in-flight
// proxied requests finish (bounded by ctx), and the prober never
// re-admits it. Unknown backends are an error.
func (g *Gateway) RemoveBackend(ctx context.Context, backend string) error {
	b, ok := g.backends[backend]
	if !ok {
		return fmt.Errorf("gateway: unknown backend %q", backend)
	}
	g.ring.Remove(backend)
	g.metrics.healthy.With(backend).Set(0)
	busy := b.startDrain()
	g.cfg.Logger.Info("backend draining",
		obs.String("backend", backend), obs.Bool("busy", busy))
	select {
	case <-b.idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("gateway: draining %s: %w", backend, ctx.Err())
	}
}
