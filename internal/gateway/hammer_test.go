package gateway_test

// The -race hammer: concurrent mixed traffic (valid, malformed,
// wrong-route, scrapes) against a gateway whose fleet is mutating
// underneath it — one backend killed, another flapping — plus a
// goroutine-leak check across the full lifecycle.

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"cnnperf/internal/gateway"
)

func TestGatewayHammer(t *testing.T) {
	workers, perWorker := 12, 40
	if raceEnabled || testing.Short() {
		workers, perWorker = 6, 15
	}
	before := runtime.NumGoroutine()
	// Registered before the gateway exists, so it runs after the
	// gateway cleanup: everything the gateway started must be gone.
	t.Cleanup(func() { waitForGoroutines(t, before) })

	stubs := []*stub{newStub("b0"), newStub("b1"), newStub("b2"), newStub("b3")}
	gw, ts := newChaosGateway(t, stubs, nil)

	victim, flapper := stubs[2], stubs[3]
	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(2)
	go func() { // kill one backend partway through
		defer chaosWG.Done()
		time.Sleep(100 * time.Millisecond)
		victim.ts.CloseClientConnections()
		victim.ts.Close()
	}()
	go func() { // flap another backend's health for the whole run
		defer chaosWG.Done()
		sick := false
		for {
			select {
			case <-stop:
				flapper.healthyOK.Store(true)
				return
			case <-time.After(60 * time.Millisecond):
				sick = !sick
				flapper.healthyOK.Store(!sick)
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < perWorker; i++ {
				var (
					path string
					body string
					want func(int) bool
				)
				switch i % 5 {
				case 0, 1: // valid predict, distinct keys
					path = "/v1/predict"
					body = fmt.Sprintf(`{"model":"hammer-%d-%d","gpus":["gtx1080ti"]}`, w, i)
					want = func(c int) bool { return c == http.StatusOK }
				case 2: // valid lint
					path = "/v1/lint"
					body = fmt.Sprintf(`{"model":"hammer-lint-%d"}`, i)
					want = func(c int) bool { return c == http.StatusOK }
				case 3: // malformed body still routes and answers
					path = "/v1/predict"
					body = `{"model":`
					want = func(c int) bool { return c == http.StatusOK }
				default: // wrong route handled by the gateway itself
					path = "/v1/nothing"
					body = `{}`
					want = func(c int) bool { return c == http.StatusNotFound }
				}
				resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
				if err != nil {
					errs <- fmt.Sprintf("worker %d: %v", w, err)
					continue
				}
				resp.Body.Close()
				if !want(resp.StatusCode) {
					errs <- fmt.Sprintf("worker %d: %s -> unexpected status %d", w, path, resp.StatusCode)
				}
				if i%10 == 0 { // scrapes race the proxy path
					mresp, merr := client.Get(ts.URL + "/metrics")
					if merr == nil {
						mresp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Drain(ctx); err != nil { // idempotent with the cleanup drain
		t.Fatalf("post-hammer drain: %v", err)
	}
	samples := promScrapeRegistry(t, gw)
	if n := promFamilySum(samples, "cnnperfd_gw_in_flight_requests"); n != 0 {
		t.Errorf("in_flight_requests = %v after drain, want 0", n)
	}
	total := promFamilySum(samples, "cnnperfd_gw_requests_total")
	if want := float64(workers * perWorker * 3 / 5); total < want {
		t.Errorf("requests_total = %v, want >= %v proxied requests", total, want)
	}
}

// TestGatewayConcurrentRemoveAndTraffic races RemoveBackend against
// live traffic: every request must still succeed, and the drained
// backend must leave the fleet exactly once.
func TestGatewayConcurrentRemoveAndTraffic(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1"), newStub("b2")}
	gw, ts := newChaosGateway(t, stubs, nil)

	leaving := stubs[0]
	var wg sync.WaitGroup
	removeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		removeErr <- gw.RemoveBackend(ctx, leaving.url())
	}()

	workers := 8
	iters := 30
	if raceEnabled {
		iters = 12
	}
	errs := make(chan string, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body := fmt.Sprintf(`{"model":"rm-%d-%d","gpus":["gtx1080ti"]}`, w, i)
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- fmt.Sprintf("worker %d: %v", w, err)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("worker %d: status %d", w, resp.StatusCode)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if err := <-removeErr; err != nil {
		t.Fatalf("RemoveBackend during traffic: %v", err)
	}
	if gw.Ring().Has(leaving.url()) {
		t.Error("drained backend still in the ring")
	}
	if _, ok := gw.Ring().Lookup(gateway.RoutingKey("/v1/predict", []byte(`{"model":"x"}`))); !ok {
		t.Error("ring lost its survivors")
	}
}
