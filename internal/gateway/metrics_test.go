package gateway_test

// The gateway half of the metric-name audit: every cnnperfd_gw_*
// family frozen by name and type, validated as Prometheus text (the
// twin of internal/server's TestMetricsNamesAndTypes).

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"cnnperf/internal/obs"
)

// gatewayFamilies is the frozen name->type table of every metric
// family the gateway exports.
var gatewayFamilies = map[string]string{
	"cnnperfd_gw_requests_total":         "counter",
	"cnnperfd_gw_proxy_duration_seconds": "histogram",
	"cnnperfd_gw_transport_errors_total": "counter",
	"cnnperfd_gw_health_probes_total":    "counter",
	"cnnperfd_gw_ejections_total":        "counter",
	"cnnperfd_gw_readmissions_total":     "counter",
	"cnnperfd_gw_backend_healthy":        "gauge",
	"cnnperfd_gw_retries_total":          "counter",
	"cnnperfd_gw_drain_retries_total":    "counter",
	"cnnperfd_gw_no_backend_total":       "counter",
	"cnnperfd_gw_rejected_total":         "counter",
	"cnnperfd_gw_in_flight_requests":     "gauge",
	"cnnperfd_gw_ring_size":              "gauge",
	"cnnperfd_gw_uptime_seconds":         "gauge",

	// The flight recorder registers the same families on both surfaces.
	"cnnperfd_fr_requests_total":         "counter",
	"cnnperfd_fr_retained_slow_total":    "counter",
	"cnnperfd_fr_retained_error_total":   "counter",
	"cnnperfd_fr_sampled_total":          "counter",
	"cnnperfd_fr_evictions_total":        "counter",
	"cnnperfd_fr_recycled_tracers_total": "counter",
	"cnnperfd_fr_retained_traces":        "gauge",
	"cnnperfd_fr_retained_spans":         "gauge",
}

func TestGatewayMetricsNamesAndTypes(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1")}
	_, ts := newChaosGateway(t, stubs, nil)
	code, raw, _ := postBody(t, ts.URL, "/v1/predict", []byte(`{"model":"audit","gpus":["g"]}`))
	if code != http.StatusOK {
		t.Fatalf("predict: status %d: %s", code, raw)
	}

	_, text := promScrape(t, ts.URL)
	if n, err := obs.ValidatePrometheusText(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	} else if n == 0 {
		t.Fatal("exposition has no samples")
	}
	typeOf := make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 4 {
			typeOf[fields[2]] = fields[3]
		}
	}
	for family, wantType := range gatewayFamilies {
		gotType, ok := typeOf[family]
		if !ok {
			t.Errorf("family %s missing from gateway /metrics", family)
			continue
		}
		if gotType != wantType {
			t.Errorf("family %s is a %s, frozen type is %s", family, gotType, wantType)
		}
	}
	for family, gotType := range typeOf {
		if _, audited := gatewayFamilies[family]; !audited {
			t.Errorf("unaudited family %s (%s) on gateway /metrics: add it to the frozen table", family, gotType)
		}
	}

	// Per-backend series are pre-registered: both backends must appear
	// with zero-or-more counts before either fails once.
	samples, _ := promScrape(t, ts.URL)
	for _, s := range stubs {
		series := fmt.Sprintf("cnnperfd_gw_backend_healthy{backend=%q}", s.url())
		if _, ok := samples[series]; !ok {
			t.Errorf("series %s not pre-registered", series)
		}
	}
}
