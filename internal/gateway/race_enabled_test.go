//go:build race

package gateway_test

// raceEnabled reports whether the test binary was built with the race
// detector; heavyweight sweeps trim themselves under it.
const raceEnabled = true
