// Package gateway implements the sharded multi-replica front end for
// cnnperfd: a consistent-hash router that spreads /v1/predict and
// /v1/lint traffic across N backend replicas by the same content key
// the server's batcher dedupes on, so every distinct unit of analysis
// work has exactly one home replica (and therefore one warm cache
// entry fleet-wide instead of N).
//
// The gateway health-checks its backends (/healthz probing with
// ejection and re-admission), retries connection failures against the
// next replica on the ring under a bounded budget with backoff,
// re-routes exactly one draining 503 per request, and exposes
// cnnperfd_gw_* metrics in Prometheus text exposition.
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// defaultVNodes is the virtual-node count per backend: high enough
// that key distribution stays within a few percent of uniform, low
// enough that ring rebuilds stay trivially cheap.
const defaultVNodes = 128

// node is one virtual point on the ring.
type node struct {
	hash    uint64
	backend string
}

// Ring is a consistent-hash ring over backend names. Placement is a
// pure function of the member set — two rings holding the same
// backends route every key identically regardless of insertion order
// or process lifetime, which is what lets a restarted gateway (or a
// second gateway replica) agree on routing without coordination.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	nodes   []node // sorted by (hash, backend)
	members map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// backend (<= 0 selects the default of 128).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// pointHash places virtual node i of a backend on the ring. sha256
// keeps placement deterministic across processes (unlike Go's seeded
// map or maphash) and uniform enough for tight distribution bounds.
func pointHash(backend string, i int) uint64 {
	sum := sha256.Sum256([]byte(backend + "\x00" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a routing key on the ring.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte("key\x00" + key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a backend (idempotent).
func (r *Ring) Add(backend string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[backend]; ok {
		return
	}
	r.members[backend] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.nodes = append(r.nodes, node{hash: pointHash(backend, i), backend: backend})
	}
	sort.Slice(r.nodes, func(a, b int) bool {
		if r.nodes[a].hash != r.nodes[b].hash {
			return r.nodes[a].hash < r.nodes[b].hash
		}
		return r.nodes[a].backend < r.nodes[b].backend
	})
}

// Remove deletes a backend (idempotent). Keys it owned redistribute
// to the ring successors of its virtual nodes; keys owned by other
// backends do not move.
func (r *Ring) Remove(backend string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[backend]; !ok {
		return
	}
	delete(r.members, backend)
	kept := r.nodes[:0]
	for _, n := range r.nodes {
		if n.backend != backend {
			kept = append(kept, n)
		}
	}
	r.nodes = kept
}

// Has reports membership.
func (r *Ring) Has(backend string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[backend]
	return ok
}

// Members returns the member set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for b := range r.members {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the backend owning key, or false on an empty ring.
func (r *Ring) Lookup(key string) (string, bool) {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return "", false
	}
	return seq[0], true
}

// Sequence returns up to max distinct backends in ring order starting
// at key's owner: the retry order for that key. Successive calls see
// the current member set; a key's sequence is stable while membership
// is.
func (r *Ring) Sequence(key string, max int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.nodes) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.members) {
		max = len(r.members)
	}
	h := keyHash(key)
	start := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].hash >= h })
	out := make([]string, 0, max)
	seen := make(map[string]struct{}, max)
	for i := 0; i < len(r.nodes) && len(out) < max; i++ {
		n := r.nodes[(start+i)%len(r.nodes)]
		if _, dup := seen[n.backend]; dup {
			continue
		}
		seen[n.backend] = struct{}{}
		out = append(out, n.backend)
	}
	return out
}
