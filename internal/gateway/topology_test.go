package gateway_test

// The topology suite: an in-process multi-replica fleet of real
// servers sharing one artifact store directory, fronted by a real
// gateway. These tests prove the PR's headline claim — routing through
// the sharded gateway is byte-identical to asking a single replica
// directly — and exercise graceful replica drain end to end.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cnnperf/internal/gateway"
	"cnnperf/internal/gpu"
	"cnnperf/internal/loadgen"
	"cnnperf/internal/server"
	"cnnperf/internal/zoo"
)

// topology is a gateway over real replicas sharing one store dir.
type topology struct {
	servers  []*server.Server
	replicas []*httptest.Server
	gw       *gateway.Gateway
	gwTS     *httptest.Server
}

// newTopology boots n real replicas over a shared artifact store and a
// gateway across them. The shared store is what makes byte-identity
// checks cheap: whichever replica computes an answer first writes it
// through, every other replica serves the identical bytes from disk.
func newTopology(t *testing.T, n int, mutate func(*gateway.Config)) *topology {
	t.Helper()
	dir := t.TempDir()
	topo := &topology{}
	var backends []string
	for i := 0; i < n; i++ {
		s, err := server.NewWithStore(server.Config{StoreDir: dir})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		ts := httptest.NewServer(s.Handler())
		topo.servers = append(topo.servers, s)
		topo.replicas = append(topo.replicas, ts)
		backends = append(backends, ts.URL)
	}
	cfg := gateway.Config{
		Backends:      backends,
		ProbeInterval: 100 * time.Millisecond,
		Timeout:       10 * time.Minute, // cold zoo computes may be slow
		RetryBackoff:  time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	topo.gw = gw
	topo.gwTS = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		topo.gwTS.Close()
		drainGateway(t, gw)
		for i, s := range topo.servers {
			topo.replicas[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := s.Drain(ctx); err != nil {
				t.Errorf("replica %d drain: %v", i, err)
			}
			cancel()
			s.Close()
		}
	})
	return topo
}

// ownerOf returns the replica index the gateway routes a body to.
func (topo *topology) ownerOf(t *testing.T, path string, body []byte) int {
	t.Helper()
	owner, ok := topo.gw.Ring().Lookup(gateway.RoutingKey(path, body))
	if !ok {
		t.Fatal("ring lookup failed")
	}
	for i, ts := range topo.replicas {
		if ts.URL == owner {
			return i
		}
	}
	t.Fatalf("ring owner %s is not a replica", owner)
	return -1
}

// TestGatewayZooByteIdentity is the golden proof: for every zoo model,
// the gateway-routed response is byte-for-byte the response a client
// would get from a replica directly, and repeat requests are stable.
func TestGatewayZooByteIdentity(t *testing.T) {
	models := zoo.Names()
	if testing.Short() || raceEnabled {
		models = models[:4]
	}
	topo := newTopology(t, 3, nil)
	gpus := gpu.TrainingGPUs

	for _, model := range models {
		body := []byte(fmt.Sprintf(`{"model":%q,"gpus":[%q,%q]}`, model, gpus[0], gpus[1]))

		gwCode, gwBody, resp := postBody(t, topo.gwTS.URL, "/v1/predict", body)
		if gwCode != http.StatusOK {
			t.Fatalf("%s via gateway: status %d: %s", model, gwCode, gwBody)
		}
		owner := topo.ownerOf(t, "/v1/predict", body)
		if got := resp.Header.Get("X-Gateway-Backend"); got != topo.replicas[owner].URL {
			t.Errorf("%s served by %s, ring owner is replica %d (%s)",
				model, got, owner, topo.replicas[owner].URL)
		}

		// Direct reference from replica 0 (disk-served if it is not the
		// owner; cache-served if it is).
		refCode, refBody, _ := postBody(t, topo.replicas[0].URL, "/v1/predict", body)
		if refCode != http.StatusOK {
			t.Fatalf("%s direct: status %d: %s", model, refCode, refBody)
		}
		if !bytes.Equal(gwBody, refBody) {
			t.Errorf("%s: gateway response differs from direct replica:\n gw %s\n direct %s",
				model, gwBody, refBody)
		}

		again, againBody, _ := postBody(t, topo.gwTS.URL, "/v1/predict", body)
		if again != http.StatusOK || !bytes.Equal(againBody, gwBody) {
			t.Errorf("%s: repeat gateway request not byte-stable (status %d)", model, again)
		}
	}
}

// TestGatewayLintAndPTXByteIdentity extends the identity proof to the
// lint endpoint and the raw-PTX predict path.
func TestGatewayLintAndPTXByteIdentity(t *testing.T) {
	topo := newTopology(t, 2, nil)
	gpus := gpu.TrainingGPUs

	cases := []struct {
		name string
		path string
		body []byte
	}{
		{"lint-model", "/v1/lint", []byte(`{"model":"alexnet"}`)},
		{"lint-ptx", "/v1/lint", mustJSONBody(t, map[string]any{"ptx": loadgen.SamplePTX})},
		{"predict-ptx", "/v1/predict", mustJSONBody(t, map[string]any{
			"ptx": loadgen.SamplePTX, "trainable_params": 1000, "gpus": []string{gpus[0], gpus[1]},
		})},
		{"bad-request", "/v1/predict", []byte(`{"gpus":["gtx1080ti"]}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gwCode, gwBody, _ := postBody(t, topo.gwTS.URL, tc.path, tc.body)
			refCode, refBody, _ := postBody(t, topo.replicas[0].URL, tc.path, tc.body)
			if gwCode != refCode {
				t.Fatalf("status mismatch: gateway %d, direct %d (gw body %s)", gwCode, refCode, gwBody)
			}
			if !equalModuloRequestID(gwBody, refBody) {
				t.Errorf("gateway response differs from direct replica:\n gw %s\n direct %s", gwBody, refBody)
			}
		})
	}
}

// equalModuloRequestID compares two response bodies; error envelopes
// embed the per-request id, so those are compared with the id fields
// blanked.
func equalModuloRequestID(a, b []byte) bool {
	if bytes.Equal(a, b) {
		return true
	}
	var ea, eb server.ErrorEnvelope
	if json.Unmarshal(a, &ea) == nil && json.Unmarshal(b, &eb) == nil && ea.Error.Code != "" {
		ea.Error.RequestID, eb.Error.RequestID = "", ""
		return ea == eb
	}
	return false
}

// TestGatewayDrainRetryRealReplica is satellite 3 on real servers: a
// replica begins graceful shutdown, late requests keyed to it get the
// draining 503 directly, and the gateway retries them onto the healthy
// replica exactly once — the client never sees the 503.
func TestGatewayDrainRetryRealReplica(t *testing.T) {
	topo := newTopology(t, 2, func(c *gateway.Config) {
		// Freeze the prober: this test pins the ring membership so the
		// draining 503 path (not ejection) is what gets exercised.
		c.ProbeInterval = time.Hour
	})
	gpus := gpu.TrainingGPUs
	body := []byte(fmt.Sprintf(`{"model":"alexnet","gpus":[%q,%q]}`, gpus[0], gpus[1]))

	// Warm through the gateway so the retried request is disk-served.
	code, raw, _ := postBody(t, topo.gwTS.URL, "/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("warm predict: status %d: %s", code, raw)
	}
	warmBody := raw

	owner := topo.ownerOf(t, "/v1/predict", body)
	other := 1 - owner
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- topo.servers[owner].Drain(ctx)
	}()
	waitUntil(t, 5*time.Second, "owner to start draining", func() bool {
		resp, err := http.Post(topo.replicas[owner].URL+"/v1/predict", "application/json",
			bytes.NewReader(body))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})

	code, raw, resp := postBody(t, topo.gwTS.URL, "/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("predict during replica drain: status %d: %s", code, raw)
	}
	if !bytes.Equal(raw, warmBody) {
		t.Errorf("drain-retried response differs from the warm answer:\n got %s\nwant %s", raw, warmBody)
	}
	if got := resp.Header.Get("X-Gateway-Backend"); got != topo.replicas[other].URL {
		t.Errorf("drain-retried request served by %s, want the healthy replica %s",
			got, topo.replicas[other].URL)
	}
	if got := resp.Header.Get("X-Gateway-Attempts"); got != "2" {
		t.Errorf("X-Gateway-Attempts = %q, want 2 (one draining 503, one success)", got)
	}
	samples := promScrapeRegistry(t, topo.gw)
	if n := promFamilySum(samples, "cnnperfd_gw_drain_retries_total"); n != 1 {
		t.Errorf("drain_retries_total = %v, want exactly 1", n)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("replica drain: %v", err)
	}
}

// TestGatewayLoadgenSmoke drives the real topology with the loadgen
// mix — the same harness the CI smoke and BENCH_9.json use — and
// requires a clean run: no transport errors, no non-2xx.
func TestGatewayLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen smoke skipped in -short")
	}
	topo := newTopology(t, 2, nil)
	mix := loadgen.MixSpec{
		Models:    zoo.Names()[:2],
		GPUs:      gpu.TrainingGPUs,
		PTXEvery:  2,
		LintEvery: 2,
	}
	requests, err := mix.Build()
	if err != nil {
		t.Fatal(err)
	}
	// One unmeasured pass computes every artifact; the measured run
	// then exercises the steady state a capacity benchmark sees.
	for _, r := range requests {
		code, raw, _ := postBody(t, topo.gwTS.URL, r.Path, r.Body)
		if code != http.StatusOK {
			t.Fatalf("warm %s: status %d: %s", r.Name, code, raw)
		}
	}
	res, err := loadgen.Run(context.Background(), loadgen.Options{
		Target:      topo.gwTS.URL,
		Requests:    requests,
		Duration:    time.Second,
		Concurrency: 4,
		Timeout:     time.Minute,
	})
	if err != nil {
		t.Fatalf("loadgen run: %v", err)
	}
	if res.Requests == 0 {
		t.Fatal("loadgen issued no requests")
	}
	if res.Errors() != 0 {
		t.Fatalf("loadgen against healthy topology: %d transport errors, %d non-2xx (%v)",
			res.TransportErrors, res.Non2xx, res.StatusCounts)
	}
	if res.Latency.P99 <= 0 || res.ThroughputRPS <= 0 {
		t.Errorf("degenerate stats: p99 %.3fms, %.1f rps", res.Latency.P99, res.ThroughputRPS)
	}
}

func mustJSONBody(t *testing.T, v map[string]any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
