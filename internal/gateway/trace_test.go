package gateway_test

// Distributed-tracing acceptance tests on the real topology: one
// /v1/predict through a two-replica gateway leaves a gw.route/gw.attempt
// trace in the gateway's flight recorder and the replica pipeline trace
// in the owner's, and the two /debug/flightrecorder dumps stitch into a
// single valid Chrome trace under the caller's trace ID.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"cnnperf/internal/gateway"
	"cnnperf/internal/gpu"
	"cnnperf/internal/obs"
	"cnnperf/internal/zoo"
)

// fetchDump fetches url and returns the raw bytes.
func fetchDump(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, raw)
	}
	return raw
}

func TestGatewayStitchedTrace(t *testing.T) {
	topo := newTopology(t, 2, func(c *gateway.Config) {
		// A nanosecond threshold retains every routed request in the
		// gateway's tail ring, making the capture deterministic. The
		// replicas run recorder defaults: the traced request lands in
		// their reservoir (or tail ring, if the run is slow) either way.
		c.FlightRecorder = obs.FlightRecorderConfig{SlowThreshold: time.Nanosecond, Seed: 1}
	})
	model := zoo.Names()[0]
	body := mustJSONBody(t, map[string]any{"model": model, "gpus": []string{gpu.TrainingGPUs[0]}})

	// Warm the owner replica first: the cold-start trace runs the whole
	// analysis pipeline and is truncated by the span limit, while the
	// warm trace that follows is the small steady-state shape a p99
	// investigation actually reads.
	if code, raw, _ := postBody(t, topo.gwTS.URL, "/v1/predict", body); code != http.StatusOK {
		t.Fatalf("warmup predict: status %d: %s", code, raw)
	}

	const traceID = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	const wire = "00-" + traceID + "-bbbbbbbbbbbbbbbb-01"
	req, err := http.NewRequest(http.MethodPost, topo.gwTS.URL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, wire)
	req.Header.Set("X-Request-ID", "stitch-pin-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced predict: status %d: %s", resp.StatusCode, raw)
	}

	// Satellite pin: the gateway echoes the caller's request id and
	// forwards it to the backend — the replica's retained trace carries
	// the edge id, not a replica-minted one.
	if got := resp.Header.Get("X-Request-ID"); got != "stitch-pin-1" {
		t.Errorf("gateway echoed X-Request-ID %q, want the caller's", got)
	}
	owner := topo.ownerOf(t, "/v1/predict", body)
	if got := resp.Header.Get("X-Gateway-Backend"); got != topo.replicas[owner].URL {
		t.Fatalf("served by %s, ring owner is %s", got, topo.replicas[owner].URL)
	}

	// Both processes retained the distributed trace under the caller's ID.
	gwTrace := traceByID(t, "gateway", topo.gw.FlightRecorder().Traces(), traceID)
	if gwTrace.Endpoint != "predict" || gwTrace.RequestID != "stitch-pin-1" || gwTrace.Status != 200 {
		t.Errorf("gateway trace meta %+v", gwTrace)
	}
	repTrace := traceByID(t, "replica", topo.servers[owner].FlightRecorder().Traces(), traceID)
	if repTrace.RequestID != "stitch-pin-1" {
		t.Errorf("replica saw request id %q, want the gateway-forwarded edge id", repTrace.RequestID)
	}

	// Pull both /debug/flightrecorder dumps over HTTP — exactly what
	// `obscheck stitch` consumes — and merge them by trace ID.
	gwDump := fetchDump(t, topo.gwTS.URL+"/debug/flightrecorder?trace="+traceID)
	repDump := fetchDump(t, topo.replicas[owner].URL+"/debug/flightrecorder?trace="+traceID)
	res, err := obs.StitchChromeTraces([]obs.StitchFile{
		{Name: "gateway.json", Data: gwDump},
		{Name: "replica.json", Data: repDump},
	}, traceID)
	if err != nil {
		t.Fatal(err)
	}
	names, err := obs.ValidateChromeTrace(res.Doc)
	if err != nil {
		t.Fatalf("stitched doc invalid: %v\n%s", err, res.Doc)
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"gw.route", "gw.attempt", "srv.predict", "srv.batch", "features", "predict"} {
		if !seen[want] {
			t.Errorf("stitched trace missing span %q (has %v)", want, names)
		}
	}
	if got := res.TraceProcs[traceID]; got != 2 {
		t.Errorf("trace %s spans %d processes, want gateway+replica", traceID, got)
	}

	// The replica's root parents under the gateway's attempt span: the
	// taxonomy is one tree across the process boundary.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(res.Doc, &doc); err != nil {
		t.Fatal(err)
	}
	var attemptSpan, srvParent, attemptBackend any
	for _, ev := range doc.TraceEvents {
		switch ev.Name {
		case "gw.attempt":
			attemptSpan = ev.Args["span_id"]
			attemptBackend = ev.Args["backend"]
		case "srv.predict":
			srvParent = ev.Args["parent_span_id"]
		}
	}
	if attemptSpan == nil || srvParent != attemptSpan {
		t.Errorf("srv.predict parent %v, want gw.attempt span %v", srvParent, attemptSpan)
	}
	if attemptBackend != topo.replicas[owner].URL {
		t.Errorf("gw.attempt backend attr %v, want %s", attemptBackend, topo.replicas[owner].URL)
	}
}

// traceByID finds the retained trace with the given ID or fails.
func traceByID(t *testing.T, proc string, traces []obs.RetainedTrace, id string) obs.RetainedTrace {
	t.Helper()
	for _, tr := range traces {
		if tr.TraceID == id {
			return tr
		}
	}
	t.Fatalf("%s flight recorder did not retain trace %s: %+v", proc, id, traces)
	return obs.RetainedTrace{}
}

// TestGatewayTraceByteIdentity proves tracing is observation, not
// behavior: routed prediction bytes are identical with the recorder
// disabled and with a caller-supplied traceparent flowing end to end.
func TestGatewayTraceByteIdentity(t *testing.T) {
	off := newTopology(t, 1, func(c *gateway.Config) { c.DisableFlightRecorder = true })
	on := newTopology(t, 1, nil)
	model := zoo.Names()[1]
	body := mustJSONBody(t, map[string]any{"model": model, "gpus": []string{gpu.TrainingGPUs[0]}})

	codeOff, rawOff, _ := postBody(t, off.gwTS.URL, "/v1/predict", body)
	req, err := http.NewRequest(http.MethodPost, on.gwTS.URL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, "00-cccccccccccccccccccccccccccccccc-dddddddddddddddd-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rawOn, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if codeOff != http.StatusOK || resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status: off=%d on=%d", codeOff, resp.StatusCode)
	}
	if !equalModuloRequestID(rawOff, rawOn) {
		t.Fatalf("tracing changed routed prediction bytes:\noff: %s\non:  %s", rawOff, rawOn)
	}
	if off.gw.FlightRecorder() != nil {
		t.Error("recorder built despite DisableFlightRecorder")
	}
}
