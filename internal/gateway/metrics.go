package gateway

import (
	"io"
	"time"

	"cnnperf/internal/obs"
)

// gwStatusClasses are the response status classes recorded per backend.
var gwStatusClasses = []string{"2xx", "4xx", "5xx"}

var gwLatencyBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// gwMetrics is the gateway telemetry: one obs.Registry rendering the
// cnnperfd_gw_* families as Prometheus text on /metrics. Per-backend
// series are pre-registered at construction so every backend shows
// zero counts before its first request.
type gwMetrics struct {
	start time.Time
	reg   *obs.Registry

	requests     *obs.CounterVec   // proxied responses by backend and status class
	proxyLatency *obs.HistogramVec // per-attempt proxy latency by backend, seconds
	transport    *obs.CounterVec   // connection/transport failures by backend
	probes       *obs.CounterVec   // health probes by backend and result (ok|fail)
	ejections    *obs.CounterVec   // unhealthy ejections by backend
	readmissions *obs.CounterVec   // recovered re-admissions by backend
	healthy      *obs.GaugeVec     // 1 healthy / 0 ejected, by backend
	retries      *obs.Counter      // extra attempts after a transport failure
	drainRetries *obs.Counter      // re-routes of a draining backend's 503
	noBackend    *obs.Counter      // requests refused because the ring was empty
	rejected     *obs.Counter      // requests refused while the gateway drained
	inFlight     *obs.Gauge
}

func newGwMetrics(ring *Ring, backends []string) *gwMetrics {
	reg := obs.NewRegistry()
	m := &gwMetrics{
		start: time.Now(),
		reg:   reg,
		requests: reg.CounterVec("cnnperfd_gw_requests_total",
			"Proxied responses by backend and status class.", "backend", "code"),
		proxyLatency: reg.HistogramVec("cnnperfd_gw_proxy_duration_seconds",
			"Per-attempt proxy latency by backend.", gwLatencyBounds, "backend"),
		transport: reg.CounterVec("cnnperfd_gw_transport_errors_total",
			"Proxy attempts that failed before an HTTP response (connection refused, reset, timeout).", "backend"),
		probes: reg.CounterVec("cnnperfd_gw_health_probes_total",
			"Health probes by backend and result.", "backend", "result"),
		ejections: reg.CounterVec("cnnperfd_gw_ejections_total",
			"Backends ejected from the ring after consecutive probe failures.", "backend"),
		readmissions: reg.CounterVec("cnnperfd_gw_readmissions_total",
			"Ejected backends re-admitted after consecutive probe successes.", "backend"),
		healthy: reg.GaugeVec("cnnperfd_gw_backend_healthy",
			"Backend health: 1 in the ring, 0 ejected or draining.", "backend"),
		retries: reg.Counter("cnnperfd_gw_retries_total",
			"Extra proxy attempts made after a transport failure."),
		drainRetries: reg.Counter("cnnperfd_gw_drain_retries_total",
			"Requests re-routed to another replica after a draining 503."),
		noBackend: reg.Counter("cnnperfd_gw_no_backend_total",
			"Requests refused because no healthy backend was available."),
		rejected: reg.Counter("cnnperfd_gw_rejected_total",
			"Requests refused while the gateway was draining."),
		inFlight: reg.Gauge("cnnperfd_gw_in_flight_requests",
			"Requests currently being proxied or served."),
	}
	for _, b := range backends {
		for _, class := range gwStatusClasses {
			m.requests.With(b, class)
		}
		m.proxyLatency.With(b)
		m.transport.With(b)
		m.probes.With(b, "ok")
		m.probes.With(b, "fail")
		m.ejections.With(b)
		m.readmissions.With(b)
		m.healthy.With(b).Set(1)
	}
	reg.GaugeFunc("cnnperfd_gw_ring_size",
		"Backends currently in the consistent-hash ring.",
		func() float64 { return float64(ring.Size()) })
	reg.GaugeFunc("cnnperfd_gw_uptime_seconds", "Seconds since the gateway started.",
		func() float64 { return time.Since(m.start).Seconds() })
	return m
}

// record counts one forwarded response.
func (m *gwMetrics) record(backend string, status int, d time.Duration) {
	class := "2xx"
	switch {
	case status >= 500:
		class = "5xx"
	case status >= 400:
		class = "4xx"
	}
	m.requests.With(backend, class).Inc()
	m.proxyLatency.With(backend).Observe(d.Seconds())
}

func (m *gwMetrics) writePrometheus(w io.Writer) error {
	return m.reg.WritePrometheus(w)
}
