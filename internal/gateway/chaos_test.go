package gateway_test

// The fault-injection suite: every gateway failure path — dead, hung,
// slow, draining and flapping backends — exercised against
// controllable stubs with millisecond probe/retry knobs, including one
// loadgen-driven kill-mid-load run proving zero dropped in-flight
// requests.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"cnnperf/internal/gateway"
	"cnnperf/internal/loadgen"
	"cnnperf/internal/server"
)

// TestGatewayContentKeyAffinity proves the sharding contract: the same
// payload always lands on the same backend (the ring owner), and the
// fleet as a whole sees every backend take traffic.
func TestGatewayContentKeyAffinity(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1"), newStub("b2")}
	gw, ts := newChaosGateway(t, stubs, nil)

	seen := make(map[string]bool)
	for i := 0; i < 30; i++ {
		body := []byte(fmt.Sprintf(`{"model":"aff-net-%d","gpus":["gtx1080ti"]}`, i))
		owner, ok := gw.Ring().Lookup(gateway.RoutingKey("/v1/predict", body))
		if !ok {
			t.Fatal("ring lookup failed")
		}
		var first []byte
		for rep := 0; rep < 3; rep++ {
			code, raw, resp := postBody(t, ts.URL, "/v1/predict", body)
			if code != http.StatusOK {
				t.Fatalf("payload %d rep %d: status %d: %s", i, rep, code, raw)
			}
			if got := resp.Header.Get("X-Gateway-Backend"); got != owner {
				t.Fatalf("payload %d served by %s, ring owner is %s", i, got, owner)
			}
			if first == nil {
				first = raw
			} else if string(raw) != string(first) {
				t.Fatalf("payload %d: repeat answers differ: %s vs %s", i, raw, first)
			}
			seen[resp.Header.Get("X-Gateway-Backend")] = true
		}
	}
	if len(seen) != len(stubs) {
		t.Errorf("30 distinct payloads reached only %d of %d backends", len(seen), len(stubs))
	}
}

// TestGatewayKilledBackendMidLoad is the headline chaos scenario: a
// backend dies (connections severed) in the middle of a sustained
// loadgen run, and not a single client request fails — in-flight
// requests retry onto survivors and the prober ejects the corpse.
func TestGatewayKilledBackendMidLoad(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1"), newStub("b2")}
	gw, ts := newChaosGateway(t, stubs, nil)

	var requests []loadgen.Request
	for i := 0; i < 40; i++ {
		requests = append(requests, loadgen.Request{
			Name: fmt.Sprintf("kill-%d", i),
			Path: "/v1/predict",
			Body: []byte(fmt.Sprintf(`{"model":"kill-net-%d","gpus":["gtx1080ti"]}`, i)),
		})
	}

	victim := stubs[1]
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(300 * time.Millisecond)
		victim.ts.CloseClientConnections()
		victim.ts.Close()
	}()

	res, err := loadgen.Run(context.Background(), loadgen.Options{
		Target:      ts.URL,
		Requests:    requests,
		Duration:    1500 * time.Millisecond,
		Concurrency: 8,
		Timeout:     10 * time.Second,
	})
	<-killed
	if err != nil {
		t.Fatalf("loadgen run: %v", err)
	}
	if res.Requests == 0 {
		t.Fatal("loadgen issued no requests")
	}
	if res.Errors() != 0 {
		t.Fatalf("killed backend leaked errors to clients: %d transport, %d non-2xx (statuses %v) over %d requests",
			res.TransportErrors, res.Non2xx, res.StatusCounts, res.Requests)
	}
	waitUntil(t, 5*time.Second, "victim ejection", func() bool {
		return !gw.Ring().Has(victim.url())
	})
	samples, _ := promScrape(t, ts.URL)
	if n := promFamilySum(samples, "cnnperfd_gw_ejections_total"); n < 1 {
		t.Errorf("ejections_total = %v, want >= 1", n)
	}
	if n := samples[fmt.Sprintf("cnnperfd_gw_backend_healthy{backend=%q}", victim.url())]; n != 0 {
		t.Errorf("backend_healthy for the victim = %v, want 0", n)
	}
}

// TestGatewayHungBackend checks the per-attempt deadline: a backend
// that accepts the connection and never answers burns one attempt at
// Timeout, then the request completes on the next ring candidate.
func TestGatewayHungBackend(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1")}
	gw, ts := newChaosGateway(t, stubs, func(c *gateway.Config) {
		c.Timeout = 200 * time.Millisecond
	})

	hung := stubs[0]
	body := bodyOwnedBy(t, gw, hung.url())
	hung.mode.Store("hang")

	start := time.Now()
	code, raw, resp := postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if got := resp.Header.Get("X-Gateway-Attempts"); got != "2" {
		t.Errorf("X-Gateway-Attempts = %q, want 2 (hung first attempt, healthy second)", got)
	}
	if got := resp.Header.Get("X-Gateway-Backend"); got != stubs[1].url() {
		t.Errorf("served by %s, want the healthy backend %s", got, stubs[1].url())
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("answered in %v, before the 200ms attempt deadline could have fired", elapsed)
	}
	samples, _ := promScrape(t, ts.URL)
	if n := samples[fmt.Sprintf("cnnperfd_gw_transport_errors_total{backend=%q}", hung.url())]; n < 1 {
		t.Errorf("transport_errors_total for hung backend = %v, want >= 1", n)
	}
	if n := promFamilySum(samples, "cnnperfd_gw_retries_total"); n < 1 {
		t.Errorf("retries_total = %v, want >= 1", n)
	}
	hung.mode.Store("ok")
}

// TestGatewaySlowBackend checks that slowness under the deadline is
// not a failure: one attempt, correct answer, no retries.
func TestGatewaySlowBackend(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1")}
	gw, ts := newChaosGateway(t, stubs, nil)

	slow := stubs[0]
	body := bodyOwnedBy(t, gw, slow.url())
	slow.mode.Store("slow")
	slow.slowFor.Store(int64(80 * time.Millisecond))

	code, raw, resp := postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if got := resp.Header.Get("X-Gateway-Attempts"); got != "1" {
		t.Errorf("X-Gateway-Attempts = %q, want 1 (slow is not broken)", got)
	}
	if got := resp.Header.Get("X-Gateway-Backend"); got != slow.url() {
		t.Errorf("served by %s, want the slow owner %s", got, slow.url())
	}
}

// TestGatewayAllBackendsDown checks the total-outage envelope: every
// attempt fails, the client gets a structured 503 no_backends with
// Retry-After, and once the prober ejects the whole fleet the answer
// comes straight from the empty ring.
func TestGatewayAllBackendsDown(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1")}
	gw, ts := newChaosGateway(t, stubs, nil)
	for _, s := range stubs {
		s.ts.CloseClientConnections()
		s.ts.Close()
	}

	body := []byte(`{"model":"alexnet","gpus":["gtx1080ti"]}`)
	code, raw, resp := postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want 1", got)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("503 body is not an error envelope: %s", raw)
	}
	if env.Error.Code != "no_backends" {
		t.Errorf("error code %q, want no_backends", env.Error.Code)
	}

	waitUntil(t, 5*time.Second, "full-fleet ejection", func() bool {
		return gw.Ring().Size() == 0
	})
	code, raw, _ = postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("empty-ring status %d, want 503: %s", code, raw)
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "no_backends" {
		t.Errorf("empty-ring error code %q, want no_backends", env.Error.Code)
	}

	hzCode, hzRaw, _ := getBody(t, ts.URL, "/healthz")
	if hzCode != http.StatusServiceUnavailable {
		t.Errorf("gateway /healthz status %d with fleet down, want 503", hzCode)
	}
	var hz gateway.HealthzResponse
	if err := json.Unmarshal(hzRaw, &hz); err != nil {
		t.Fatalf("bad healthz body: %s", hzRaw)
	}
	if hz.Status != "down" || hz.RingSize != 0 {
		t.Errorf("healthz = %q ring %d, want down/0", hz.Status, hz.RingSize)
	}
	samples, _ := promScrape(t, ts.URL)
	if n := promFamilySum(samples, "cnnperfd_gw_no_backend_total"); n < 2 {
		t.Errorf("no_backend_total = %v, want >= 2", n)
	}
}

// TestGatewayDrainRetriedExactlyOnce is the satellite-3 contract: a
// 503 whose body is the server's draining envelope is re-routed to the
// next ring candidate exactly once; a second draining answer is
// forwarded to the client verbatim, never retried again.
func TestGatewayDrainRetriedExactlyOnce(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1"), newStub("b2")}
	gw, ts := newChaosGateway(t, stubs, nil)

	byURL := make(map[string]*stub)
	for _, s := range stubs {
		byURL[s.url()] = s
	}
	body := bodyOwnedBy(t, gw, stubs[0].url())
	seq := gw.Ring().Sequence(gateway.RoutingKey("/v1/predict", body), 3)
	first, second := byURL[seq[0]], byURL[seq[1]]

	// One draining replica: the request re-routes once and succeeds.
	first.mode.Store("drain503")
	code, raw, resp := postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("status %d after one draining replica: %s", code, raw)
	}
	if got := resp.Header.Get("X-Gateway-Backend"); got != second.url() {
		t.Errorf("served by %s, want the drain successor %s", got, second.url())
	}
	if got := resp.Header.Get("X-Gateway-Attempts"); got != "2" {
		t.Errorf("X-Gateway-Attempts = %q, want 2", got)
	}
	samples, _ := promScrape(t, ts.URL)
	if n := promFamilySum(samples, "cnnperfd_gw_drain_retries_total"); n != 1 {
		t.Errorf("drain_retries_total = %v, want exactly 1", n)
	}

	// Every replica draining: one re-route is spent, the second
	// draining 503 is the client's answer, byte-for-byte.
	for _, s := range stubs {
		s.mode.Store("drain503")
	}
	code, raw, resp = postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with whole fleet draining, want 503: %s", code, raw)
	}
	if string(raw) != drainEnvelope {
		t.Errorf("draining 503 not forwarded verbatim:\n got %s\nwant %s", raw, drainEnvelope)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("backend Retry-After not forwarded: %q", got)
	}
	if got := resp.Header.Get("X-Gateway-Attempts"); got != "2" {
		t.Errorf("X-Gateway-Attempts = %q, want 2 (exactly one drain re-route)", got)
	}
	samples, _ = promScrape(t, ts.URL)
	if n := promFamilySum(samples, "cnnperfd_gw_drain_retries_total"); n != 2 {
		t.Errorf("drain_retries_total = %v, want exactly 2", n)
	}
	for _, s := range stubs {
		s.mode.Store("ok")
	}
}

// TestGatewayBackendErrorForwardedVerbatim checks that a backend's own
// 4xx is the client's answer — same status, same bytes, no retry (the
// gateway must never mask or duplicate replica validation).
func TestGatewayBackendErrorForwardedVerbatim(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1")}
	gw, ts := newChaosGateway(t, stubs, nil)

	bad := stubs[0]
	body := bodyOwnedBy(t, gw, bad.url())
	bad.mode.Store("badreq")
	code, raw, resp := postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want the backend's 400: %s", code, raw)
	}
	if string(raw) != badreqEnvelope {
		t.Errorf("400 body not verbatim:\n got %s\nwant %s", raw, badreqEnvelope)
	}
	if got := resp.Header.Get("X-Gateway-Attempts"); got != "1" {
		t.Errorf("X-Gateway-Attempts = %q, want 1 (4xx must not retry)", got)
	}
}

// TestGatewayEjectionReadmission walks the full health state machine:
// FailThreshold sick probes eject a backend from the ring, its keys
// fail over, ReviveThreshold healthy probes re-admit it, and its keys
// come home.
func TestGatewayEjectionReadmission(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1")}
	gw, ts := newChaosGateway(t, stubs, nil)

	sick := stubs[0]
	body := bodyOwnedBy(t, gw, sick.url())

	sick.healthyOK.Store(false)
	waitUntil(t, 5*time.Second, "ejection", func() bool {
		return !gw.Ring().Has(sick.url())
	})
	code, raw, resp := postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("status %d during ejection: %s", code, raw)
	}
	if got := resp.Header.Get("X-Gateway-Backend"); got != stubs[1].url() {
		t.Errorf("ejected backend's keys served by %s, want survivor %s", got, stubs[1].url())
	}
	samples, _ := promScrape(t, ts.URL)
	if n := samples[fmt.Sprintf("cnnperfd_gw_ejections_total{backend=%q}", sick.url())]; n != 1 {
		t.Errorf("ejections_total = %v, want 1", n)
	}
	if n := samples[fmt.Sprintf("cnnperfd_gw_backend_healthy{backend=%q}", sick.url())]; n != 0 {
		t.Errorf("backend_healthy = %v during ejection, want 0", n)
	}

	sick.healthyOK.Store(true)
	waitUntil(t, 5*time.Second, "re-admission", func() bool {
		return gw.Ring().Has(sick.url())
	})
	code, raw, resp = postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("status %d after re-admission: %s", code, raw)
	}
	if got := resp.Header.Get("X-Gateway-Backend"); got != sick.url() {
		t.Errorf("re-admitted backend's keys served by %s, want home %s", got, sick.url())
	}
	samples, _ = promScrape(t, ts.URL)
	if n := samples[fmt.Sprintf("cnnperfd_gw_readmissions_total{backend=%q}", sick.url())]; n != 1 {
		t.Errorf("readmissions_total = %v, want 1", n)
	}
	if n := samples[fmt.Sprintf("cnnperfd_gw_backend_healthy{backend=%q}", sick.url())]; n != 1 {
		t.Errorf("backend_healthy = %v after re-admission, want 1", n)
	}
	if n := promFamilySum(samples, "cnnperfd_gw_health_probes_total"); n < 4 {
		t.Errorf("health_probes_total = %v, want several rounds", n)
	}
}

// TestGatewayRemoveBackendGraceful checks operator-initiated drain:
// the backend leaves the ring immediately (new traffic re-routes), the
// in-flight request it was serving completes successfully, and
// RemoveBackend only returns once the backend is idle.
func TestGatewayRemoveBackendGraceful(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1")}
	gw, ts := newChaosGateway(t, stubs, nil)

	leaving := stubs[0]
	body := bodyOwnedBy(t, gw, leaving.url())
	leaving.mode.Store("slow")
	leaving.slowFor.Store(int64(400 * time.Millisecond))

	type answer struct {
		code    int
		body    string
		backend string
	}
	inflight := make(chan answer, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(string(body)))
		if err != nil {
			inflight <- answer{code: -1, body: err.Error()}
			return
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		inflight <- answer{resp.StatusCode, sb.String(), resp.Header.Get("X-Gateway-Backend")}
	}()
	waitUntil(t, 5*time.Second, "in-flight request to reach the leaving backend", func() bool {
		return leaving.requests.Load() >= 1
	})

	removeDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		removeDone <- gw.RemoveBackend(ctx, leaving.url())
	}()
	waitUntil(t, 5*time.Second, "ring removal", func() bool {
		return !gw.Ring().Has(leaving.url())
	})

	// While still draining: RemoveBackend blocks, new traffic for the
	// leaving backend's keys already routes to the survivor.
	select {
	case err := <-removeDone:
		t.Fatalf("RemoveBackend returned (%v) while an in-flight request was running", err)
	case <-time.After(50 * time.Millisecond):
	}
	code, raw, resp := postBody(t, ts.URL, "/v1/predict", body)
	if code != http.StatusOK {
		t.Fatalf("status %d during drain: %s", code, raw)
	}
	if got := resp.Header.Get("X-Gateway-Backend"); got != stubs[1].url() {
		t.Errorf("drained backend's keys served by %s, want survivor %s", got, stubs[1].url())
	}

	select {
	case err := <-removeDone:
		if err != nil {
			t.Fatalf("RemoveBackend: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RemoveBackend never returned after the in-flight request finished")
	}
	got := <-inflight
	if got.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d body %s", got.code, got.body)
	}
	if got.backend != leaving.url() {
		t.Errorf("in-flight request served by %s, want the draining backend %s", got.backend, leaving.url())
	}

	// The prober must never re-admit a drained backend.
	time.Sleep(100 * time.Millisecond) // several probe rounds
	if gw.Ring().Has(leaving.url()) {
		t.Error("prober re-admitted a drained backend")
	}
	hzCode, hzRaw, _ := getBody(t, ts.URL, "/healthz")
	if hzCode != http.StatusOK {
		t.Errorf("gateway /healthz status %d with one replica drained, want 200", hzCode)
	}
	var hz gateway.HealthzResponse
	if err := json.Unmarshal(hzRaw, &hz); err != nil {
		t.Fatalf("bad healthz body: %s", hzRaw)
	}
	if hz.Status != "degraded" {
		t.Errorf("healthz status %q, want degraded", hz.Status)
	}
	for _, b := range hz.Backends {
		if b.URL == leaving.url() && (!b.Draining || b.InRing) {
			t.Errorf("healthz for drained backend: %+v, want draining and out of the ring", b)
		}
	}

	if err := gw.RemoveBackend(context.Background(), "http://never-registered:1"); err == nil {
		t.Error("RemoveBackend accepted an unknown backend")
	}
}

// TestGatewayDrainGate checks the gateway's own shutdown behaviour:
// after Drain, new requests get the structured draining 503.
func TestGatewayDrainGate(t *testing.T) {
	stubs := []*stub{newStub("b0")}
	gw, ts := newChaosGateway(t, stubs, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gw.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	code, raw, resp := postBody(t, ts.URL, "/v1/predict", []byte(`{"model":"alexnet","gpus":["gtx1080ti"]}`))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d after drain, want 503: %s", code, raw)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "draining" {
		t.Errorf("post-drain error code %q, want draining (%s)", env.Error.Code, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want 1", got)
	}
	// The drained gateway gates /metrics too; read the registry directly.
	samples := promScrapeRegistry(t, gw)
	if n := promFamilySum(samples, "cnnperfd_gw_rejected_total"); n < 1 {
		t.Errorf("rejected_total = %v, want >= 1", n)
	}
}

// TestGatewayHTTPSurface covers the non-proxy surface: method and
// route errors, the body bound, and request-id echo.
func TestGatewayHTTPSurface(t *testing.T) {
	stubs := []*stub{newStub("b0")}
	_, ts := newChaosGateway(t, stubs, func(c *gateway.Config) {
		c.MaxBodyBytes = 256
	})

	code, raw, resp := getBody(t, ts.URL, "/v1/predict")
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/predict: status %d, want 405 (%s)", code, raw)
	}
	if got := resp.Header.Get("Allow"); got != http.MethodPost {
		t.Errorf("Allow = %q, want POST", got)
	}

	code, raw, _ = postBody(t, ts.URL, "/v1/nope", []byte(`{}`))
	if code != http.StatusNotFound {
		t.Errorf("unknown route: status %d, want 404 (%s)", code, raw)
	}

	big := []byte(`{"ptx":"` + strings.Repeat("x", 1024) + `"}`)
	code, raw, _ = postBody(t, ts.URL, "/v1/predict", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413 (%s)", code, raw)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code != "body_too_large" {
		t.Errorf("oversized-body code %q, want body_too_large", env.Error.Code)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(`{"model":"m","gpus":["g"]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "chaos-rid-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "chaos-rid-42" {
		t.Errorf("X-Request-ID echo = %q, want chaos-rid-42", got)
	}
}

// getBody issues a GET and returns status, body and response.
func getBody(t *testing.T, url, path string) (int, []byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw := make([]byte, 0, 1024)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		raw = append(raw, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	return resp.StatusCode, raw, resp
}

// TestGatewayClientCancelNotCountedAgainstBackend pins the rule that
// an inbound hangup is not a backend failure: when the client cancels
// mid-attempt, the gateway must not count a transport error, must not
// feed the ejection state machine, and must leave the backend in the
// ring. (A mass client disconnect once ejected perfectly healthy
// replicas.)
func TestGatewayClientCancelNotCountedAgainstBackend(t *testing.T) {
	stubs := []*stub{newStub("b0"), newStub("b1")}
	_, ts := newChaosGateway(t, stubs, func(c *gateway.Config) {
		c.FailThreshold = 1 // a single counted failure would eject
	})
	for _, s := range stubs {
		s.mode.Store("hang") // park the attempt so the cancel lands mid-flight
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/predict",
			strings.NewReader(`{"model":"cancel-net","gpus":["gtx1080ti"]}`))
		if err != nil {
			done <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("request succeeded with status %d against hung backends", resp.StatusCode)
		}
		done <- err
	}()
	waitUntil(t, 5*time.Second, "attempt parked on a hung stub", func() bool {
		return stubs[0].hangs.Load()+stubs[1].hangs.Load() > 0
	})
	cancel()
	if err := <-done; err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("client error = %v, want context canceled", err)
	}

	samples, _ := promScrape(t, ts.URL)
	if n := promFamilySum(samples, "cnnperfd_gw_transport_errors_total"); n != 0 {
		t.Errorf("transport_errors_total = %v after a client cancel, want 0", n)
	}
	if n := promFamilySum(samples, "cnnperfd_gw_ejections_total"); n != 0 {
		t.Errorf("ejections_total = %v after a client cancel, want 0", n)
	}
	if n := promFamilySum(samples, "cnnperfd_gw_backend_healthy"); n != float64(len(stubs)) {
		t.Errorf("backend_healthy sum = %v, want %d (nobody ejected)", n, len(stubs))
	}
	for _, s := range stubs {
		s.mode.Store("ok")
	}
	if code, raw, _ := postBody(t, ts.URL, "/v1/predict", []byte(`{"model":"cancel-net","gpus":["gtx1080ti"]}`)); code != http.StatusOK {
		t.Errorf("post-cancel request: status %d: %s", code, raw)
	}
}
