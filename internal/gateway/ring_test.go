package gateway

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Key shapes mirror real routing keys: model names, ptx hashes.
		keys[i] = fmt.Sprintf("model\x00net-%04d", i)
	}
	return keys
}

func backendNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 8100+i)
	}
	return out
}

// TestRingDistribution checks the satellite's load-balance bound:
// across 1k keys no backend owns more than 1.5x the mean, for several
// fleet shapes and vnode counts.
func TestRingDistribution(t *testing.T) {
	cases := []struct {
		name     string
		backends int
		vnodes   int
		keys     int
	}{
		{"2-backends-default-vnodes", 2, 0, 1000},
		{"3-backends-default-vnodes", 3, 0, 1000},
		{"4-backends-default-vnodes", 4, 0, 1000},
		{"8-backends-default-vnodes", 8, 0, 1000},
		{"4-backends-256-vnodes", 4, 256, 1000},
		{"4-backends-64-vnodes", 4, 64, 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRing(tc.vnodes)
			for _, b := range backendNames(tc.backends) {
				r.Add(b)
			}
			counts := make(map[string]int)
			for _, k := range testKeys(tc.keys) {
				owner, ok := r.Lookup(k)
				if !ok {
					t.Fatalf("lookup %q failed on a populated ring", k)
				}
				counts[owner]++
			}
			if len(counts) != tc.backends {
				t.Fatalf("only %d of %d backends own keys: %v", len(counts), tc.backends, counts)
			}
			mean := float64(tc.keys) / float64(tc.backends)
			for b, n := range counts {
				if float64(n) > 1.5*mean {
					t.Errorf("%s owns %d keys, more than 1.5x the mean %.0f (distribution %v)",
						b, n, mean, counts)
				}
			}
		})
	}
}

// TestRingMinimalRemapping checks the consistent-hashing contract: on
// membership change, only keys adjacent to the changed backend's
// virtual nodes move, and they move to/from that backend only.
func TestRingMinimalRemapping(t *testing.T) {
	keys := testKeys(1000)

	t.Run("remove", func(t *testing.T) {
		backends := backendNames(4)
		r := NewRing(0)
		for _, b := range backends {
			r.Add(b)
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k], _ = r.Lookup(k)
		}
		removed := backends[2]
		r.Remove(removed)
		moved := 0
		for _, k := range keys {
			after, ok := r.Lookup(k)
			if !ok {
				t.Fatalf("lookup %q failed after removal", k)
			}
			if after == removed {
				t.Fatalf("key %q still routes to removed backend", k)
			}
			if before[k] != after {
				moved++
				// Only the removed backend's keys may move.
				if before[k] != removed {
					t.Errorf("key %q moved %s -> %s although %s was removed",
						k, before[k], after, removed)
				}
			}
		}
		// Roughly a quarter of the keys lived on the removed backend.
		if moved == 0 || float64(moved) > 0.40*float64(len(keys)) {
			t.Errorf("removal moved %d of %d keys; want ~25%%", moved, len(keys))
		}
	})

	t.Run("add", func(t *testing.T) {
		backends := backendNames(4)
		r := NewRing(0)
		for _, b := range backends {
			r.Add(b)
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k], _ = r.Lookup(k)
		}
		added := "http://127.0.0.1:9999"
		r.Add(added)
		moved := 0
		for _, k := range keys {
			after, _ := r.Lookup(k)
			if before[k] != after {
				moved++
				// Keys may only move onto the new backend.
				if after != added {
					t.Errorf("key %q moved %s -> %s although only %s was added",
						k, before[k], after, added)
				}
			}
		}
		// Roughly a fifth of the keys move to the fifth backend.
		if moved == 0 || float64(moved) > 0.35*float64(len(keys)) {
			t.Errorf("addition moved %d of %d keys; want ~20%%", moved, len(keys))
		}
	})

	t.Run("remove-then-readd-restores", func(t *testing.T) {
		backends := backendNames(3)
		r := NewRing(0)
		for _, b := range backends {
			r.Add(b)
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k], _ = r.Lookup(k)
		}
		r.Remove(backends[1])
		r.Add(backends[1])
		for _, k := range keys {
			after, _ := r.Lookup(k)
			if before[k] != after {
				t.Fatalf("key %q: eject/re-admit cycle changed owner %s -> %s",
					k, before[k], after)
			}
		}
	})
}

// TestRingDeterminism checks that placement is a pure function of the
// member set: insertion order, prior membership churn, and process
// lifetime must not matter. A gateway restart (or a second gateway
// instance) rebuilds the identical routing table.
func TestRingDeterminism(t *testing.T) {
	backends := backendNames(5)
	keys := testKeys(500)

	build := func(order []string, churn bool) *Ring {
		r := NewRing(0)
		if churn {
			r.Add("http://transient:1")
			r.Add("http://transient:2")
		}
		for _, b := range order {
			r.Add(b)
		}
		if churn {
			r.Remove("http://transient:1")
			r.Remove("http://transient:2")
		}
		return r
	}

	reference := build(backends, false)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		order := append([]string(nil), backends...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		other := build(order, trial%2 == 1)
		for _, k := range keys {
			want, _ := reference.Lookup(k)
			got, _ := other.Lookup(k)
			if got != want {
				t.Fatalf("trial %d: key %q routes to %s, reference says %s (order %v)",
					trial, k, got, want, order)
			}
		}
	}
}

// TestRingGoldenPlacement pins concrete key->backend assignments. A
// hash-function or vnode-layout change silently re-homes every cached
// analysis in a live fleet; this test makes such a change an explicit,
// reviewed decision.
func TestRingGoldenPlacement(t *testing.T) {
	r := NewRing(0)
	for _, b := range []string{"http://b0", "http://b1", "http://b2", "http://b3"} {
		r.Add(b)
	}
	golden := map[string]string{
		"model\x00alexnet":         "http://b3",
		"model\x00vgg16":           "http://b2",
		"model\x00resnet50":        "http://b3",
		"model\x00mobilenet":       "http://b0",
		"model\x00squeezenet":      "http://b3",
		"lint\x00model\x00alexnet": "http://b2",
	}
	for key, want := range golden {
		got, ok := r.Lookup(key)
		if !ok {
			t.Fatalf("lookup %q failed", key)
		}
		if got != want {
			t.Errorf("key %q -> %s, golden placement %s (hash layout changed?)", key, got, want)
		}
	}
}

// TestRingSequence checks the retry-order contract: distinct backends,
// first element agrees with Lookup, bounded by membership, stable.
func TestRingSequence(t *testing.T) {
	r := NewRing(0)
	backends := backendNames(4)
	for _, b := range backends {
		r.Add(b)
	}
	for _, k := range testKeys(50) {
		owner, _ := r.Lookup(k)
		seq := r.Sequence(k, 3)
		if len(seq) != 3 {
			t.Fatalf("sequence length %d, want 3", len(seq))
		}
		if seq[0] != owner {
			t.Fatalf("sequence starts at %s, Lookup says %s", seq[0], owner)
		}
		seen := map[string]bool{}
		for _, b := range seq {
			if seen[b] {
				t.Fatalf("sequence %v repeats backend %s", seq, b)
			}
			seen[b] = true
		}
	}
	if got := r.Sequence("any", 10); len(got) != len(backends) {
		t.Errorf("over-asking returned %d backends, want all %d", len(got), len(backends))
	}
	if got := r.Sequence("any", 0); got != nil {
		t.Errorf("max=0 returned %v", got)
	}
}

// TestRingEdgeCases covers the empty ring, idempotent add/remove, and
// membership accounting.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Lookup("key"); ok {
		t.Error("lookup on empty ring succeeded")
	}
	if got := r.Sequence("key", 3); got != nil {
		t.Errorf("sequence on empty ring = %v", got)
	}
	if r.Size() != 0 {
		t.Errorf("empty ring size %d", r.Size())
	}
	r.Add("http://a")
	r.Add("http://a") // idempotent
	if r.Size() != 1 {
		t.Fatalf("size %d after duplicate add, want 1", r.Size())
	}
	if got, _ := r.Lookup("anything"); got != "http://a" {
		t.Errorf("single-backend ring routed to %q", got)
	}
	r.Remove("http://never-added") // no-op
	if r.Size() != 1 {
		t.Errorf("removing a non-member changed size to %d", r.Size())
	}
	r.Remove("http://a")
	if r.Size() != 0 || r.Has("http://a") {
		t.Errorf("remove left members: size %d", r.Size())
	}
	if members := NewRing(0).Members(); len(members) != 0 {
		t.Errorf("empty ring members %v", members)
	}
}
