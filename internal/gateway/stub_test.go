package gateway_test

// Test infrastructure for the chaos and hammer suites: controllable
// stub backends that speak just enough of the cnnperfd surface
// (/v1/predict, /v1/lint, /healthz) to exercise every gateway failure
// path cheaply and deterministically. The byte-identity suite in
// topology_test.go uses real server replicas instead.

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cnnperf/internal/gateway"
)

// Canonical stub error bodies: tests assert these exact bytes come
// back through the gateway to prove verbatim forwarding.
const (
	drainEnvelope  = `{"error":{"code":"draining","message":"server is shutting down"}}`
	badreqEnvelope = `{"error":{"code":"bad_request","message":"stub rejected it"}}`
)

// stub is one fake backend with a switchable failure mode.
type stub struct {
	name string
	ts   *httptest.Server

	mode      atomic.Value // "ok" | "slow" | "hang" | "drain503" | "badreq"
	slowFor   atomic.Int64 // nanoseconds, for "slow"
	healthyOK atomic.Bool  // /healthz answers 200 when true

	requests atomic.Int64 // proxied API requests served (not probes)
	hangs    atomic.Int64 // requests currently parked in "hang"
}

func newStub(name string) *stub {
	s := &stub{name: name}
	s.mode.Store("ok")
	s.healthyOK.Store(true)
	s.ts = httptest.NewServer(http.HandlerFunc(s.handle))
	return s
}

func (s *stub) url() string { return s.ts.URL }

func (s *stub) handle(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		if s.healthyOK.Load() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{"status":"ok"}`)
		} else {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"status":"sick"}`)
		}
		return
	}
	s.requests.Add(1)
	body, _ := io.ReadAll(r.Body)
	switch s.mode.Load().(string) {
	case "hang":
		s.hangs.Add(1)
		defer s.hangs.Add(-1)
		<-r.Context().Done() // park until the gateway gives up
		return
	case "slow":
		time.Sleep(time.Duration(s.slowFor.Load()))
	case "drain503":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, drainEnvelope)
		return
	case "badreq":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, badreqEnvelope)
		return
	}
	// The response is a deterministic function of (backend, request
	// body): distinct payloads produce distinct bodies, and the same
	// payload always produces the same bytes from the same backend —
	// which is what lets tests prove affinity and verbatim forwarding.
	sum := sha256.Sum256(body)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, `{"ok":true,"backend":%q,"payload":%q}`, s.name, hex.EncodeToString(sum[:8]))
}

// chaosConfig is the fast-knob gateway config the chaos suite uses:
// tight probe/retry timing so failure handling is observable in
// milliseconds instead of seconds.
func chaosConfig(stubs []*stub) gateway.Config {
	urls := make([]string, len(stubs))
	for i, s := range stubs {
		urls[i] = s.url()
	}
	return gateway.Config{
		Backends:        urls,
		ProbeInterval:   25 * time.Millisecond,
		ProbeTimeout:    250 * time.Millisecond,
		FailThreshold:   2,
		ReviveThreshold: 2,
		RetryBudget:     3,
		RetryBackoff:    time.Millisecond,
		Timeout:         time.Second,
	}
}

// newChaosGateway boots a gateway over the stubs and tears everything
// down with the test.
func newChaosGateway(t *testing.T, stubs []*stub, mutate func(*gateway.Config)) (*gateway.Gateway, *httptest.Server) {
	t.Helper()
	cfg := chaosConfig(stubs)
	if mutate != nil {
		mutate(&cfg)
	}
	gw, err := gateway.New(cfg)
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		drainGateway(t, gw)
		for _, s := range stubs {
			s.ts.Close()
		}
	})
	return gw, ts
}

func drainGateway(t *testing.T, gw *gateway.Gateway) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := gw.Drain(ctx); err != nil {
		t.Errorf("gateway drain: %v", err)
	}
	gw.Close()
}

// bodyOwnedBy finds a predict payload whose routing key the given
// backend owns, so tests can aim traffic at a specific replica.
func bodyOwnedBy(t *testing.T, gw *gateway.Gateway, backend string) []byte {
	t.Helper()
	for i := 0; i < 4096; i++ {
		body := []byte(fmt.Sprintf(`{"model":"probe-net-%d","gpus":["gtx1080ti"]}`, i))
		key := gateway.RoutingKey("/v1/predict", body)
		if owner, ok := gw.Ring().Lookup(key); ok && owner == backend {
			return body
		}
	}
	t.Fatalf("no probe payload routes to %s", backend)
	return nil
}

// postBody POSTs one JSON payload and returns status, body, response.
func postBody(t *testing.T, url, path string, body []byte) (int, []byte, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp
}

// promScrape fetches the gateway /metrics and returns every sample
// keyed by its full series text ("name{labels}"), plus the raw text.
func promScrape(t *testing.T, url string) (map[string]float64, string) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parsePromText(t, string(raw)), string(raw)
}

// promScrapeRegistry reads the same samples straight off the registry,
// for tests that run after the HTTP surface has been drained.
func promScrapeRegistry(t *testing.T, gw *gateway.Gateway) map[string]float64 {
	t.Helper()
	var buf strings.Builder
	if err := gw.Registry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return parsePromText(t, buf.String())
}

func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			continue
		}
		samples[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

// promFamilySum totals every series of one metric family.
func promFamilySum(samples map[string]float64, family string) float64 {
	total := 0.0
	for series, v := range samples {
		if series == family || strings.HasPrefix(series, family+"{") {
			total += v
		}
	}
	return total
}

// waitUntil polls cond until it holds or the deadline lapses.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForGoroutines polls until the goroutine count returns near the
// pre-test level (leak check for the hammer suites).
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
