// Package ptxgen lowers a cnn.Model into PTX kernels plus launch
// configurations — the role nvcc plays in the paper's pipeline. Each graph
// node becomes one or more kernels with one thread per output element,
// realistic address arithmetic, bounds-check branches and reduction loops,
// so that the dynamic code analysis downstream faces the same
// data-dependent control flow it would in nvcc output (paper Fig. 2).
package ptxgen

import (
	"fmt"

	"cnnperf/internal/ptx"
)

// emitter builds one kernel, allocating virtual registers and labels.
type emitter struct {
	k       *ptx.Kernel
	nr      int // %r   32-bit int
	nrd     int // %rd  64-bit int
	nf      int // %f   fp32
	np      int // %p   predicates
	nlabels int
	batch   int64 // scales the bounds-check extent of prologue(n)
}

func newEmitter(name string) *emitter {
	return &emitter{k: &ptx.Kernel{Name: name}, batch: 1}
}

// param declares a kernel parameter and returns its name.
func (e *emitter) param(typ string) string {
	name := fmt.Sprintf("%s_param_%d", e.k.Name, len(e.k.Params))
	e.k.Params = append(e.k.Params, ptx.Param{Name: name, Type: typ})
	return name
}

func (e *emitter) r() string  { e.nr++; return fmt.Sprintf("%%r%d", e.nr) }
func (e *emitter) rd() string { e.nrd++; return fmt.Sprintf("%%rd%d", e.nrd) }
func (e *emitter) f() string  { e.nf++; return fmt.Sprintf("%%f%d", e.nf) }
func (e *emitter) p() string  { e.np++; return fmt.Sprintf("%%p%d", e.np) }

// label reserves a fresh label name (not yet placed).
func (e *emitter) label(hint string) string {
	e.nlabels++
	return fmt.Sprintf("$L__%s_%d", hint, e.nlabels)
}

// place attaches a label to the next emitted instruction.
func (e *emitter) place(label string) {
	if err := e.k.AddLabel(label); err != nil {
		panic(err) // programming error: labels are generated unique
	}
}

// emit appends an unpredicated instruction.
func (e *emitter) emit(opcode string, operands ...string) {
	e.k.Append(ptx.Instruction{Opcode: opcode, Operands: operands})
}

// emitPred appends an instruction guarded by pred (negated when neg).
func (e *emitter) emitPred(pred string, neg bool, opcode string, operands ...string) {
	e.k.Append(ptx.Instruction{Pred: pred, PredNeg: neg, Opcode: opcode, Operands: operands})
}

// finish declares the register banks from the allocation counters and
// returns the kernel.
func (e *emitter) finish() *ptx.Kernel {
	if e.np > 0 {
		e.k.Regs = append(e.k.Regs, ptx.RegDecl{Type: ".pred", Prefix: "%p", Count: e.np + 1})
	}
	if e.nf > 0 {
		e.k.Regs = append(e.k.Regs, ptx.RegDecl{Type: ".f32", Prefix: "%f", Count: e.nf + 1})
	}
	if e.nr > 0 {
		e.k.Regs = append(e.k.Regs, ptx.RegDecl{Type: ".b32", Prefix: "%r", Count: e.nr + 1})
	}
	if e.nrd > 0 {
		e.k.Regs = append(e.k.Regs, ptx.RegDecl{Type: ".b64", Prefix: "%rd", Count: e.nrd + 1})
	}
	return e.k
}

// prologue emits the canonical thread prologue: load pointer params,
// convert to global addresses, compute the global thread id and emit the
// bounds check against n. It returns the global-id register, the global
// pointer registers (one per pointer param) and the exit label (placed by
// epilogue).
func (e *emitter) prologue(nPtrParams int, n int64) (gid string, ptrs []string, exit string) {
	n *= e.batch
	ptrs = make([]string, nPtrParams)
	for i := 0; i < nPtrParams; i++ {
		pname := e.param(".u64")
		raw := e.rd()
		e.emit("ld.param.u64", raw, "["+pname+"]")
		g := e.rd()
		e.emit("cvta.to.global.u64", g, raw)
		ptrs[i] = g
	}
	ctaid := e.r()
	e.emit("mov.u32", ctaid, "%ctaid.x")
	ntid := e.r()
	e.emit("mov.u32", ntid, "%ntid.x")
	tid := e.r()
	e.emit("mov.u32", tid, "%tid.x")
	gid = e.r()
	e.emit("mad.lo.s32", gid, ctaid, ntid, tid)
	oob := e.p()
	e.emit("setp.ge.s32", oob, gid, imm(n))
	exit = e.label("EXIT")
	e.emitPred(oob, false, "bra", exit)
	return gid, ptrs, exit
}

// epilogue places the exit label and emits ret.
func (e *emitter) epilogue(exit string) {
	e.place(exit)
	e.emit("ret")
}

// loadF emits the address computation and global load of one fp32 element
// at base + 4*idx32, returning the loaded register. Three instructions of
// address arithmetic per access, like compiled code.
func (e *emitter) loadF(base, idx32 string) string {
	wide := e.rd()
	e.emit("mul.wide.s32", wide, idx32, "4")
	addr := e.rd()
	e.emit("add.s64", addr, base, wide)
	val := e.f()
	e.emit("ld.global.f32", val, "["+addr+"]")
	return val
}

// storeF emits the address computation and global store of one fp32
// element at base + 4*idx32.
func (e *emitter) storeF(base, idx32, val string) {
	wide := e.rd()
	e.emit("mul.wide.s32", wide, idx32, "4")
	addr := e.rd()
	e.emit("add.s64", addr, base, wide)
	e.emit("st.global.f32", "["+addr+"]", val)
}

// channelParams declares a fresh pointer parameter, loads it and
// computes the per-channel index of gid — the addressing prelude of a
// fused per-channel normalisation.
func (e *emitter) channelParams(gid string, channels int64) (base, ch string) {
	pname := e.param(".u64")
	raw := e.rd()
	e.emit("ld.param.u64", raw, "["+pname+"]")
	base = e.rd()
	e.emit("cvta.to.global.u64", base, raw)
	ch = e.r()
	e.emit("rem.s32", ch, gid, imm(channels))
	return base, ch
}

// loadSharedF emits a shared-memory load of one fp32 element at
// base + 4*idx32.
func (e *emitter) loadSharedF(base, idx32 string) string {
	wide := e.rd()
	e.emit("mul.wide.s32", wide, idx32, "4")
	addr := e.rd()
	e.emit("add.s64", addr, base, wide)
	val := e.f()
	e.emit("ld.shared.f32", val, "["+addr+"]")
	return val
}

// storeSharedF emits a shared-memory store of one fp32 element at
// base + 4*idx32.
func (e *emitter) storeSharedF(base, idx32, val string) {
	wide := e.rd()
	e.emit("mul.wide.s32", wide, idx32, "4")
	addr := e.rd()
	e.emit("add.s64", addr, base, wide)
	e.emit("st.shared.f32", "["+addr+"]", val)
}

// macLoop emits a multiply-accumulate reduction loop of k iterations. The
// per-iteration input index is in0 = gid*c0 + i*c1 (mad) and the weight
// index iw = i*c2 + gid%... simplified to i*c2 + gid (mad), which matches
// the addressing density of real GEMM inner loops. Returns the
// accumulator register.
func (e *emitter) macLoop(gid string, aBase, bBase string, k int64, c0, c1, c2 int64) string {
	i := e.r()
	e.emit("mov.u32", i, "0")
	acc := e.f()
	e.emit("mov.f32", acc, "0f00000000")
	loop := e.label("LOOP")
	e.place(loop)
	ia := e.r()
	e.emit("mad.lo.s32", ia, i, imm(c1), gid)
	ia2 := e.r()
	e.emit("mul.lo.s32", ia2, ia, imm(c0))
	a := e.loadF(aBase, ia2)
	ib := e.r()
	e.emit("mad.lo.s32", ib, i, imm(c2), gid)
	b := e.loadF(bBase, ib)
	e.emit("fma.rn.f32", acc, a, b, acc)
	e.emit("add.s32", i, i, "1")
	again := e.p()
	e.emit("setp.lt.s32", again, i, imm(k))
	e.emitPred(again, false, "bra", loop)
	return acc
}

// imm renders an integer immediate operand.
func imm(v int64) string { return fmt.Sprintf("%d", v) }
