package ptxgen

import (
	"fmt"

	"cnnperf/internal/cnn"
	"cnnperf/internal/ptx"
)

// BlockSize is the fixed thread-block size of all generated launches.
const BlockSize = 256

// ConvLowering selects how convolutions are lowered to kernels.
type ConvLowering int

const (
	// ImplicitGEMM generates one fused kernel per convolution with the
	// GEMM reduction inlined (one thread per output element).
	ImplicitGEMM ConvLowering = iota
	// Im2colGEMM generates an explicit im2col expansion kernel followed
	// by a GEMM kernel, like classic cuDNN paths.
	Im2colGEMM
	// TiledGEMM generates a shared-memory tiled convolution kernel:
	// the reduction is staged through on-chip shared memory in
	// TileSize-element tiles with barrier synchronisation, cutting the
	// global-memory traffic by roughly the tile size.
	TiledGEMM
)

// TileSize is the shared-memory tile extent of the TiledGEMM lowering.
const TileSize = 16

// Options configures code generation.
type Options struct {
	// Lowering selects the convolution lowering strategy.
	Lowering ConvLowering
	// Target is the SM target string (default "sm_61").
	Target string
	// Batch is the inference batch size (default 1). Launch thread
	// counts and activation working sets scale with it; per-thread
	// control flow does not.
	Batch int
	// FuseElementwise folds single-consumer BatchNorm and simple
	// activation nodes into their producer kernel (the conv+BN+ReLU
	// fusion every real framework performs — the generated kernels are
	// even named fusion_N in XLA style). Fewer launches, less memory
	// traffic.
	FuseElementwise bool
}

func (o Options) batch() int64 {
	if o.Batch <= 0 {
		return 1
	}
	return int64(o.Batch)
}

// Launch records how one generated kernel is executed: grid dimensions
// and scalar parameter values, plus workload metadata the GPU simulator
// uses for its memory model.
type Launch struct {
	// Kernel is the kernel entry name.
	Kernel string
	// GridX is the number of thread blocks.
	GridX int
	// BlockX is the threads per block (BlockSize).
	BlockX int
	// Threads is the number of useful (in-bounds) threads.
	Threads int64
	// Params maps kernel parameter names to their runtime values
	// (pointers carry synthetic non-zero addresses).
	Params map[string]int64
	// WorkingSetBytes approximates the bytes of distinct memory the
	// launch touches (inputs + outputs + weights).
	WorkingSetBytes int64
	// Node is the graph node this launch implements.
	Node string
}

// Program is the compilation result for one model.
type Program struct {
	// Model is the compiled model's name.
	Model string
	// Module holds every generated kernel.
	Module *ptx.Module
	// Launches is the execution schedule in graph order.
	Launches []Launch
}

// Compile lowers the model to PTX. Shape-only nodes (input, flatten,
// dropout) generate no kernels; everything else becomes at least one
// kernel whose control flow depends on the layer configuration.
func Compile(m *cnn.Model, opts Options) (*Program, error) {
	if m == nil {
		return nil, fmt.Errorf("ptxgen: nil model")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("ptxgen: %w", err)
	}
	target := opts.Target
	if target == "" {
		target = "sm_61"
	}
	p := &Program{
		Model:  m.Name,
		Module: &ptx.Module{Version: "6.0", Target: target, AddressSize: 64},
	}
	g := &generator{
		prog: p, opts: opts,
		fused:         map[string]bool{},
		consumers:     map[string]int{},
		consumerNodes: map[string][]*cnn.Node{},
	}
	for _, n := range m.Nodes() {
		for _, in := range n.Inputs {
			g.consumers[in.Name]++
			g.consumerNodes[in.Name] = append(g.consumerNodes[in.Name], n)
		}
	}
	for _, n := range m.Nodes() {
		if g.fused[n.Name] {
			continue // folded into its producer's kernel
		}
		if err := g.lower(n); err != nil {
			return nil, fmt.Errorf("ptxgen: model %s node %s: %w", m.Name, n.Name, err)
		}
	}
	if err := p.Module.Validate(); err != nil {
		return nil, fmt.Errorf("ptxgen: generated invalid module: %w", err)
	}
	return p, nil
}

// generator carries compilation state.
type generator struct {
	prog          *Program
	opts          Options
	kernels       int
	fused         map[string]bool        // nodes folded into a producer kernel
	consumers     map[string]int         // consumer count per node
	consumerNodes map[string][]*cnn.Node // consumer nodes per node
}

// newEmitter creates a batch-aware kernel emitter for a node.
func (g *generator) newEmitter(node *cnn.Node, suffix string) *emitter {
	e := newEmitter(g.kernelName(node, suffix))
	e.batch = g.opts.batch()
	return e
}

// kernelName mints a unique fusion-style kernel name for a node.
func (g *generator) kernelName(node *cnn.Node, suffix string) string {
	g.kernels++
	name := fmt.Sprintf("fusion_%d_%s", g.kernels, node.Op.Kind())
	if suffix != "" {
		name += "_" + suffix
	}
	return name
}

// addLaunch registers a finished kernel and its launch. The thread count
// and activation working set scale with the batch size.
func (g *generator) addLaunch(k *ptx.Kernel, node *cnn.Node, threads int64, workingSet int64, params map[string]int64) {
	batch := g.opts.batch()
	threads *= batch
	workingSet *= batch
	if params == nil {
		params = map[string]int64{}
	}
	// Synthetic base addresses for pointer parameters not set by the
	// caller: distinct non-zero values aid debugging.
	for i, p := range k.Params {
		if _, ok := params[p.Name]; !ok {
			params[p.Name] = int64(0x1000_0000 + 0x100_0000*i)
		}
	}
	grid := int((threads + BlockSize - 1) / BlockSize)
	if grid < 1 {
		grid = 1
	}
	g.prog.Module.Kernels = append(g.prog.Module.Kernels, k)
	g.prog.Launches = append(g.prog.Launches, Launch{
		Kernel:          k.Name,
		GridX:           grid,
		BlockX:          BlockSize,
		Threads:         threads,
		Params:          params,
		WorkingSetBytes: workingSet,
		Node:            node.Name,
	})
}

// lower dispatches on the node's op type.
func (g *generator) lower(n *cnn.Node) error {
	switch op := n.Op.(type) {
	case cnn.InputOp, cnn.Flatten, cnn.Dropout:
		return nil // shape-only: no kernel
	case cnn.Conv2D:
		return g.lowerConv(n, op)
	case cnn.DepthwiseConv2D:
		return g.lowerDepthwise(n, op)
	case cnn.Dense:
		return g.lowerDense(n, op)
	case cnn.Pool2D:
		return g.lowerPool(n, op)
	case cnn.GlobalPool2D:
		return g.lowerGlobalPool(n, op)
	case cnn.BatchNorm:
		return g.lowerBatchNorm(n)
	case cnn.GroupNorm:
		return g.lowerGroupNorm(n)
	case cnn.Activation:
		return g.lowerActivation(n, op)
	case cnn.Add:
		return g.lowerAdd(n)
	case cnn.Multiply:
		return g.lowerMultiply(n)
	case cnn.Concat:
		return g.lowerConcat(n)
	case cnn.ZeroPad2D:
		return g.lowerCopy(n, "pad")
	default:
		return fmt.Errorf("no lowering for op %q", n.Op.Kind())
	}
}

// inShape returns the i-th input shape of a node.
func inShape(n *cnn.Node, i int) cnn.Shape { return n.Inputs[i].OutShape() }

// bytesOf converts an element count to fp32 bytes.
func bytesOf(elems int64) int64 { return 4 * elems }
