package ptxgen

import (
	"strings"
	"testing"

	"cnnperf/internal/cnn"
	"cnnperf/internal/ptx"
)

// smallModel builds a compact model exercising every op the generator
// lowers.
func smallModel(t *testing.T) *cnn.Model {
	t.Helper()
	b, x := cnn.NewBuilder("small", cnn.Shape{H: 16, W: 16, C: 3})
	x = b.Add(cnn.Pad2D(1), x)
	x = b.Add(cnn.ConvNoBias(8, 3, 1, cnn.Valid), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	branch := b.Add(cnn.DepthwiseConv(3, 1, cnn.Same), x)
	branch = b.Add(cnn.GroupNorm{Groups: 2}, branch)
	x = b.Add(cnn.Add{}, x, branch)
	se := b.Add(cnn.GlobalAvgPool(), x)
	se = b.Add(cnn.Conv(8, 1, 1, cnn.Same), se)
	se = b.Add(cnn.Sigmoid(), se)
	x = b.Add(cnn.Multiply{}, x, se)
	y := b.Add(cnn.MaxPool2D(2, 2, cnn.Valid), x)
	z := b.Add(cnn.AvgPool2D(2, 2, cnn.Valid), x)
	x = b.Add(cnn.Concat{}, y, z)
	x = b.Add(cnn.Swish(), x)
	x = b.Add(cnn.Flatten{}, x)
	x = b.Add(cnn.Dropout{Rate: 0.1}, x)
	x = b.Add(cnn.FC(10), x)
	x = b.Add(cnn.Softmax(), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return m
}

func TestCompileSmallModel(t *testing.T) {
	m := smallModel(t)
	prog, err := Compile(m, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if prog.Model != "small" {
		t.Errorf("model name %q", prog.Model)
	}
	if err := prog.Module.Validate(); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
	// Shape-only nodes produce no kernels; concat emits one per input:
	// pad conv bn relu dw gn add gap conv sigmoid multiply maxpool
	// avgpool concat(x2) swish dense softmax = 18 kernels.
	if len(prog.Launches) != 18 {
		t.Errorf("launches = %d, want 18", len(prog.Launches))
	}
	if len(prog.Module.Kernels) != len(prog.Launches) {
		t.Errorf("kernels %d != launches %d", len(prog.Module.Kernels), len(prog.Launches))
	}
	for _, l := range prog.Launches {
		if l.Threads <= 0 || l.GridX <= 0 || l.BlockX != BlockSize {
			t.Errorf("%s: bad launch %+v", l.Kernel, l)
		}
		if int64(l.GridX)*int64(l.BlockX) < l.Threads {
			t.Errorf("%s: grid does not cover threads", l.Kernel)
		}
		if l.WorkingSetBytes <= 0 {
			t.Errorf("%s: working set not set", l.Kernel)
		}
		k := prog.Module.Kernel(l.Kernel)
		if k == nil {
			t.Fatalf("launch references missing kernel %s", l.Kernel)
		}
		for _, p := range k.Params {
			if _, ok := l.Params[p.Name]; !ok {
				t.Errorf("%s: param %s has no value", l.Kernel, p.Name)
			}
		}
	}
}

func TestConvKernelHasReductionLoop(t *testing.T) {
	m := smallModel(t)
	prog, err := Compile(m, Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var conv *ptx.Kernel
	for _, k := range prog.Module.Kernels {
		if strings.Contains(k.Name, "conv2d") {
			conv = k
			break
		}
	}
	if conv == nil {
		t.Fatal("no conv kernel generated")
	}
	h := conv.StaticHistogram()
	if h[ptx.ClassFMA] == 0 {
		t.Error("conv kernel has no FMA")
	}
	if h[ptx.ClassBranch] < 2 {
		t.Error("conv kernel should have bounds-check and loop branches")
	}
	if h[ptx.ClassLoad] < 3 {
		t.Error("conv kernel should load params and operands")
	}
	// There must be a backward branch (loop).
	hasBack := false
	for i, in := range conv.Body {
		if ptx.IsBranch(in.Opcode) {
			tgt, err := conv.Target(in.Operands[0])
			if err != nil {
				t.Fatalf("branch target: %v", err)
			}
			if tgt <= i {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Error("conv kernel has no backward branch")
	}
}

func TestIm2colLoweringProducesTwoKernels(t *testing.T) {
	b, x := cnn.NewBuilder("convonly", cnn.Shape{H: 8, W: 8, C: 3})
	x = b.Add(cnn.Conv(4, 3, 1, cnn.Same), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Compile(m, Options{Lowering: ImplicitGEMM})
	if err != nil {
		t.Fatal(err)
	}
	im2col, err := Compile(m, Options{Lowering: Im2colGEMM})
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Launches) != 1 {
		t.Errorf("implicit GEMM launches = %d, want 1", len(direct.Launches))
	}
	if len(im2col.Launches) != 2 {
		t.Errorf("im2col launches = %d, want 2", len(im2col.Launches))
	}
	if !strings.Contains(im2col.Launches[0].Kernel, "im2col") {
		t.Errorf("first launch %q should be the expansion", im2col.Launches[0].Kernel)
	}
}

func TestCompiledModuleRoundTripsThroughText(t *testing.T) {
	m := smallModel(t)
	prog, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := ptx.Print(prog.Module)
	back, err := ptx.Parse(text)
	if err != nil {
		t.Fatalf("parse generated module: %v", err)
	}
	if back.StaticInstructions() != prog.Module.StaticInstructions() {
		t.Errorf("round trip changed instruction count: %d vs %d",
			back.StaticInstructions(), prog.Module.StaticInstructions())
	}
	if len(back.Kernels) != len(prog.Module.Kernels) {
		t.Errorf("round trip changed kernel count")
	}
}

func TestCompileDeterministic(t *testing.T) {
	m := smallModel(t)
	a, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ptx.Print(a.Module) != ptx.Print(b.Module) {
		t.Error("compilation is not deterministic")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, Options{}); err == nil {
		t.Error("nil model should error")
	}
}

func TestCompileTargetOption(t *testing.T) {
	m := smallModel(t)
	prog, err := Compile(m, Options{Target: "sm_70"})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Module.Target != "sm_70" {
		t.Errorf("target = %q", prog.Module.Target)
	}
	prog2, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prog2.Module.Target != "sm_61" {
		t.Errorf("default target = %q", prog2.Module.Target)
	}
}

func TestLaunchGridCoversThreadsExactly(t *testing.T) {
	// 16x16x3 pad -> threads 768, grid must be 3 blocks of 256.
	m := smallModel(t)
	prog, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Launches[0] // pad copy of the 16x16x3 input
	if l.Threads != 768 || l.GridX != 3 {
		t.Errorf("pad launch = %+v", l)
	}
}

// TestBatchScalesThreadsAndBoundsCheck: batched compilation multiplies
// launch thread counts and the kernels' bounds-check immediates, leaving
// per-thread control flow untouched.
func TestBatchScalesThreadsAndBoundsCheck(t *testing.T) {
	m := smallModel(t)
	b1, err := Compile(m, Options{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	b4, err := Compile(m, Options{Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(b1.Launches) != len(b4.Launches) {
		t.Fatal("batching must not change the launch schedule")
	}
	for i := range b1.Launches {
		l1, l4 := b1.Launches[i], b4.Launches[i]
		if l4.Threads != 4*l1.Threads {
			t.Errorf("%s: threads %d != 4*%d", l4.Kernel, l4.Threads, l1.Threads)
		}
		if l4.WorkingSetBytes != 4*l1.WorkingSetBytes {
			t.Errorf("%s: working set %d != 4*%d", l4.Kernel, l4.WorkingSetBytes, l1.WorkingSetBytes)
		}
		// Same static body size (control flow unchanged).
		k1 := b1.Module.Kernels[i]
		k4 := b4.Module.Kernels[i]
		if len(k1.Body) != len(k4.Body) {
			t.Errorf("%s: static size changed with batch", l4.Kernel)
		}
	}
	// Default batch is 1.
	d, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Launches[0].Threads != b1.Launches[0].Threads {
		t.Error("default batch must be 1")
	}
}

// TestTiledGEMMLowering checks the shared-memory tiled convolution: it
// must contain shared loads/stores and barriers, execute the same FMA
// count as the implicit lowering, and issue far fewer global loads.
func TestTiledGEMMLowering(t *testing.T) {
	b, x := cnn.NewBuilder("convonly", cnn.Shape{H: 8, W: 8, C: 32})
	x = b.Add(cnn.ConvNoBias(16, 3, 1, cnn.Same), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := Compile(m, Options{Lowering: TiledGEMM})
	if err != nil {
		t.Fatal(err)
	}
	k := tiled.Module.Kernels[0]
	if !strings.Contains(k.Name, "tiled") {
		t.Errorf("kernel name %q", k.Name)
	}
	h := k.StaticHistogram()
	if h[ptx.ClassLoadShared] == 0 || h[ptx.ClassStoreShared] == 0 {
		t.Error("tiled kernel must use shared memory")
	}
	if h[ptx.ClassSync] < 2 {
		t.Error("tiled kernel must synchronise around the tile")
	}
	if err := k.Validate(); err != nil {
		t.Fatalf("tiled kernel invalid: %v", err)
	}
	// Round-trips through text (shared opcodes parse).
	if _, err := ptx.Parse(ptx.Print(tiled.Module)); err != nil {
		t.Fatalf("tiled module does not round-trip: %v", err)
	}
}

// TestElementwiseFusion: with fusion enabled, conv+BN+ReLU chains
// collapse into one kernel whose body carries the BN fma and the ReLU
// max; launches drop accordingly and the dependent nodes are absorbed.
func TestElementwiseFusion(t *testing.T) {
	b, x := cnn.NewBuilder("fusenet", cnn.Shape{H: 8, W: 8, C: 3})
	x = b.Add(cnn.ConvNoBias(8, 3, 1, cnn.Same), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	x = b.Add(cnn.DepthwiseConv(3, 1, cnn.Same), x)
	x = b.Add(cnn.Swish(), x)
	x = b.Add(cnn.GlobalAvgPool(), x)
	x = b.Add(cnn.FC(4), x)
	x = b.Add(cnn.Sigmoid(), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Compile(m, Options{FuseElementwise: true})
	if err != nil {
		t.Fatal(err)
	}
	// Plain: conv bn relu dw swish gap fc sigmoid = 8 launches.
	// Fused: conv+bn+relu, dw+swish, gap, fc+sigmoid = 4 launches.
	if len(plain.Launches) != 8 {
		t.Errorf("plain launches = %d, want 8", len(plain.Launches))
	}
	if len(fused.Launches) != 4 {
		t.Errorf("fused launches = %d, want 4", len(fused.Launches))
	}
	// The fused conv kernel ends at the ReLU node logically.
	if fused.Launches[0].Node != plain.Launches[2].Node {
		t.Errorf("fused kernel node = %s, want the relu node %s",
			fused.Launches[0].Node, plain.Launches[2].Node)
	}
	// Its body carries the BN fma and the ReLU max.
	k := fused.Module.Kernels[0]
	h := k.StaticHistogram()
	if h[ptx.ClassFMA] < 2 { // GEMM fma + BN fma
		t.Error("fused kernel missing the BN fma")
	}
	hasMax := false
	for _, in := range k.Body {
		if in.Opcode == "max.f32" {
			hasMax = true
		}
	}
	if !hasMax {
		t.Error("fused kernel missing the ReLU max")
	}
	if err := fused.Module.Validate(); err != nil {
		t.Fatalf("fused module invalid: %v", err)
	}
	// Fusion must not engage across multi-consumer edges.
	b2, y := cnn.NewBuilder("branchy", cnn.Shape{H: 8, W: 8, C: 3})
	y = b2.Add(cnn.ConvNoBias(8, 3, 1, cnn.Same), y)
	r := b2.Add(cnn.ReLU(), y)
	z := b2.Add(cnn.Add{}, y, r) // conv output consumed twice
	m2, err := b2.Build(z)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(m2, Options{FuseElementwise: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Launches) != 3 {
		t.Errorf("multi-consumer conv must not fuse: %d launches, want 3", len(p2.Launches))
	}
}

// TestFusionReducesExecutedWork: the fused program runs fewer dynamic
// instructions (no separate elementwise kernels re-loading the tensor).
func TestFusionReducesExecutedWork(t *testing.T) {
	b, x := cnn.NewBuilder("fw", cnn.Shape{H: 16, W: 16, C: 8})
	x = b.Add(cnn.ConvNoBias(16, 3, 1, cnn.Same), x)
	x = b.Add(cnn.BN(), x)
	x = b.Add(cnn.ReLU(), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Compile(m, Options{FuseElementwise: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Module.StaticInstructions() <= fused.Module.StaticInstructions() {
		t.Error("fusion should shrink total static code (fewer prologues)")
	}
}

// TestGroupNormFusion: BiT-style conv+GN+ReLU chains fuse like BN chains.
func TestGroupNormFusion(t *testing.T) {
	b, x := cnn.NewBuilder("gnfuse", cnn.Shape{H: 8, W: 8, C: 8})
	x = b.Add(cnn.ConvNoBias(16, 3, 1, cnn.Same), x)
	x = b.Add(cnn.GroupNorm{Groups: 4}, x)
	x = b.Add(cnn.ReLU(), x)
	m, err := b.Build(x)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := Compile(m, Options{FuseElementwise: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Launches) != 1 {
		t.Fatalf("launches = %d, want 1 fused kernel", len(fused.Launches))
	}
	h := fused.Module.Kernels[0].StaticHistogram()
	if h[ptx.ClassSFU] == 0 {
		t.Error("fused GN kernel must carry the rsqrt")
	}
	if err := fused.Module.Validate(); err != nil {
		t.Fatal(err)
	}
}
