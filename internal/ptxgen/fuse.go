package ptxgen

import "cnnperf/internal/cnn"

// fusableOnto reports whether node c can fold into its producer's kernel:
// the producer feeds only c, c reads only the producer, and c is an
// elementwise op with a register-level implementation (BatchNorm or a
// simple activation).
func (g *generator) fusableOnto(c, producer *cnn.Node) bool {
	if !g.opts.FuseElementwise {
		return false
	}
	if g.consumers[producer.Name] != 1 {
		return false
	}
	if len(c.Inputs) != 1 || c.Inputs[0] != producer {
		return false
	}
	switch op := c.Op.(type) {
	case cnn.BatchNorm, cnn.GroupNorm:
		_ = op
		return true
	case cnn.Activation:
		switch op.Fn {
		case "relu", "swish", "sigmoid":
			return true
		}
	}
	return false
}

// soleConsumer returns the single consumer of n, or nil.
func (g *generator) soleConsumer(n *cnn.Node) *cnn.Node {
	cs := g.consumerNodes[n.Name]
	if len(cs) != 1 {
		return nil
	}
	return cs[0]
}

// fuseTail folds the chain of fusable elementwise nodes following n into
// the open kernel: it emits their per-element arithmetic on val and
// marks them as fused. It returns the final node of the chain (the
// kernel's logical output), the final value register and the extra
// working-set bytes (BN parameter vectors).
func (g *generator) fuseTail(e *emitter, n *cnn.Node, gid, val string) (*cnn.Node, string, int64) {
	last := n
	var extraWS int64
	for {
		c := g.soleConsumer(last)
		if c == nil || !g.fusableOnto(c, last) {
			return last, val, extraWS
		}
		switch op := c.Op.(type) {
		case cnn.BatchNorm:
			// Scale-and-shift with per-channel parameters loaded from a
			// dedicated pointer parameter.
			base, ch := e.channelParams(gid, int64(c.OutShape().C))
			scale := e.loadF(base, ch)
			shift := e.loadF(base, ch)
			out := e.f()
			e.emit("fma.rn.f32", out, val, scale, shift)
			val = out
			extraWS += 8 * int64(c.OutShape().C)
		case cnn.GroupNorm:
			// Normalise with the group's inverse deviation, then scale
			// and shift (inference form, as in lowerGroupNorm).
			base, ch := e.channelParams(gid, int64(c.OutShape().C))
			varv := e.loadF(base, ch)
			inv := e.f()
			e.emit("rsqrt.approx.f32", inv, varv)
			norm := e.f()
			e.emit("mul.f32", norm, val, inv)
			gamma := e.loadF(base, ch)
			beta := e.loadF(base, ch)
			out := e.f()
			e.emit("fma.rn.f32", out, norm, gamma, beta)
			val = out
			extraWS += 8 * int64(c.OutShape().C)
		case cnn.Activation:
			switch op.Fn {
			case "relu":
				zero := e.f()
				e.emit("mov.f32", zero, "0f00000000")
				out := e.f()
				e.emit("max.f32", out, val, zero)
				val = out
			case "swish", "sigmoid":
				neg := e.f()
				e.emit("neg.f32", neg, val)
				ev := e.f()
				e.emit("ex2.approx.f32", ev, neg)
				one := e.f()
				e.emit("mov.f32", one, "0f3F800000")
				den := e.f()
				e.emit("add.f32", den, ev, one)
				sig := e.f()
				e.emit("rcp.approx.f32", sig, den)
				if op.Fn == "swish" {
					out := e.f()
					e.emit("mul.f32", out, val, sig)
					val = out
				} else {
					val = sig
				}
			}
		}
		g.fused[c.Name] = true
		last = c
	}
}
