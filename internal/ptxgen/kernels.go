package ptxgen

import (
	"cnnperf/internal/cnn"
)

// lowerConv generates the convolution kernels. With ImplicitGEMM a single
// kernel reduces over K = KH*KW*Cin/groups per output element; with
// Im2colGEMM an explicit expansion kernel precedes a plain GEMM.
func (g *generator) lowerConv(n *cnn.Node, op cnn.Conv2D) error {
	in := inShape(n, 0)
	out := n.OutShape()
	groups := op.Groups
	if groups <= 0 {
		groups = 1
	}
	k := int64(op.KH) * int64(op.KW) * int64(in.C) / int64(groups)
	weightBytes := bytesOf(op.Params([]cnn.Shape{in}))
	switch g.opts.Lowering {
	case Im2colGEMM:
		// im2col: one thread per expanded matrix element.
		cols := out.Elements() / int64(out.C) * k // (H*W) x K matrix
		e := g.newEmitter(n, "im2col")
		gid, ptrs, exit := e.prologue(2, cols)
		// Gather: compute source coordinate, load, store.
		row := e.r()
		e.emit("div.s32", row, gid, imm(k))
		col := e.r()
		e.emit("rem.s32", col, gid, imm(k))
		src := e.r()
		e.emit("mad.lo.s32", src, row, imm(int64(op.SH)), col)
		v := e.loadF(ptrs[0], src)
		e.storeF(ptrs[1], gid, v)
		e.epilogue(exit)
		g.addLaunch(e.finish(), n, cols, bytesOf(in.Elements())+bytesOf(cols), nil)

		// GEMM over the expanded matrix.
		e = g.newEmitter(n, "gemm")
		gid, ptrs, exit = e.prologue(3, out.Elements())
		acc := e.macLoop(gid, ptrs[0], ptrs[1], k, 1, int64(out.C), int64(out.C))
		if op.UseBias {
			bias := e.loadF(ptrs[2], gid)
			e.emit("add.f32", acc, acc, bias)
		}
		e.storeF(ptrs[2], gid, acc)
		e.epilogue(exit)
		g.addLaunch(e.finish(), n, out.Elements(),
			bytesOf(cols)+weightBytes+bytesOf(out.Elements()), nil)
		return nil
	case TiledGEMM:
		return g.lowerConvTiled(n, op, k, weightBytes)
	default: // ImplicitGEMM
		e := g.newEmitter(n, "")
		gid, ptrs, exit := e.prologue(3, out.Elements()) // in, weights, out
		acc := e.macLoop(gid, ptrs[0], ptrs[1], k, int64(op.SW), int64(in.C), int64(out.C))
		if op.UseBias {
			bias := e.loadF(ptrs[1], gid)
			e.emit("add.f32", acc, acc, bias)
		}
		last, val, extraWS := g.fuseTail(e, n, gid, acc)
		e.storeF(ptrs[2], gid, val)
		e.epilogue(exit)
		g.addLaunch(e.finish(), last, out.Elements(),
			bytesOf(in.Elements())+weightBytes+bytesOf(out.Elements())+extraWS, nil)
		return nil
	}
}

// lowerConvTiled generates a shared-memory tiled convolution: the K-deep
// reduction is processed in TileSize chunks staged through shared memory
// with barrier synchronisation. Each thread issues two global loads per
// tile instead of two per reduction element, so DRAM traffic drops by
// about the tile size.
func (g *generator) lowerConvTiled(n *cnn.Node, op cnn.Conv2D, k, weightBytes int64) error {
	in := inShape(n, 0)
	out := n.OutShape()
	nTiles := (k + TileSize - 1) / TileSize
	e := g.newEmitter(n, "tiled")
	gid, ptrs, exit := e.prologue(3, out.Elements())

	// Shared-memory tile bases (fixed offsets inside the block's SMEM).
	shA := e.rd()
	e.emit("mov.u64", shA, "0")
	shB := e.rd()
	e.emit("mov.u64", shB, imm(4*TileSize))

	acc := e.f()
	e.emit("mov.f32", acc, "0f00000000")
	tile := e.r()
	e.emit("mov.u32", tile, "0")
	tileLoop := e.label("TILE")
	e.place(tileLoop)

	// Stage one element of each operand into shared memory.
	ia := e.r()
	e.emit("mad.lo.s32", ia, tile, imm(TileSize), gid)
	av := e.loadF(ptrs[0], ia)
	lane := e.r()
	e.emit("rem.s32", lane, gid, imm(TileSize))
	e.storeSharedF(shA, lane, av)
	ib := e.r()
	e.emit("mad.lo.s32", ib, tile, imm(int64(out.C)), gid)
	bv := e.loadF(ptrs[1], ib)
	e.storeSharedF(shB, lane, bv)
	e.emit("bar.sync", "0")

	// Inner product over the staged tile.
	j := e.r()
	e.emit("mov.u32", j, "0")
	inner := e.label("INNER")
	e.place(inner)
	fa := e.loadSharedF(shA, j)
	fb := e.loadSharedF(shB, j)
	e.emit("fma.rn.f32", acc, fa, fb, acc)
	e.emit("add.s32", j, j, "1")
	more := e.p()
	e.emit("setp.lt.s32", more, j, imm(TileSize))
	e.emitPred(more, false, "bra", inner)
	e.emit("bar.sync", "0")

	e.emit("add.s32", tile, tile, "1")
	again := e.p()
	e.emit("setp.lt.s32", again, tile, imm(nTiles))
	e.emitPred(again, false, "bra", tileLoop)

	if op.UseBias {
		bias := e.loadF(ptrs[1], gid)
		e.emit("add.f32", acc, acc, bias)
	}
	e.storeF(ptrs[2], gid, acc)
	e.epilogue(exit)
	g.addLaunch(e.finish(), n, out.Elements(),
		bytesOf(in.Elements())+weightBytes+bytesOf(out.Elements()), nil)
	return nil
}

// lowerDepthwise reduces over the KH*KW window per output element.
func (g *generator) lowerDepthwise(n *cnn.Node, op cnn.DepthwiseConv2D) error {
	in := inShape(n, 0)
	out := n.OutShape()
	k := int64(op.KH) * int64(op.KW)
	e := g.newEmitter(n, "")
	gid, ptrs, exit := e.prologue(3, out.Elements())
	acc := e.macLoop(gid, ptrs[0], ptrs[1], k, int64(op.SW), int64(in.C), 1)
	last, val, extraWS := g.fuseTail(e, n, gid, acc)
	e.storeF(ptrs[2], gid, val)
	e.epilogue(exit)
	g.addLaunch(e.finish(), last, out.Elements(),
		bytesOf(in.Elements())+bytesOf(op.Params([]cnn.Shape{in}))+bytesOf(out.Elements())+extraWS, nil)
	return nil
}

// lowerDense is a GEMV: one thread per output unit reducing over the
// input width.
func (g *generator) lowerDense(n *cnn.Node, op cnn.Dense) error {
	in := inShape(n, 0)
	out := n.OutShape()
	e := g.newEmitter(n, "")
	gid, ptrs, exit := e.prologue(3, out.Elements())
	acc := e.macLoop(gid, ptrs[0], ptrs[1], int64(in.C), 1, 1, int64(out.C))
	if op.UseBias {
		bias := e.loadF(ptrs[1], gid)
		e.emit("add.f32", acc, acc, bias)
	}
	last, val, extraWS := g.fuseTail(e, n, gid, acc)
	e.storeF(ptrs[2], gid, val)
	e.epilogue(exit)
	g.addLaunch(e.finish(), last, out.Elements(),
		bytesOf(in.Elements())+bytesOf(op.Params([]cnn.Shape{in}))+bytesOf(out.Elements())+extraWS, nil)
	return nil
}

// lowerPool reduces over the pooling window with max or add.
func (g *generator) lowerPool(n *cnn.Node, op cnn.Pool2D) error {
	in := inShape(n, 0)
	out := n.OutShape()
	k := int64(op.KH) * int64(op.KW)
	e := g.newEmitter(n, "")
	gid, ptrs, exit := e.prologue(2, out.Elements())

	i := e.r()
	e.emit("mov.u32", i, "0")
	acc := e.f()
	if op.Kind2 == cnn.MaxPool {
		e.emit("mov.f32", acc, "0fFF7FFFFF") // -FLT_MAX
	} else {
		e.emit("mov.f32", acc, "0f00000000")
	}
	loop := e.label("LOOP")
	e.place(loop)
	idx := e.r()
	e.emit("mad.lo.s32", idx, i, imm(int64(op.SW)), gid)
	v := e.loadF(ptrs[0], idx)
	if op.Kind2 == cnn.MaxPool {
		e.emit("max.f32", acc, acc, v)
	} else {
		e.emit("add.f32", acc, acc, v)
	}
	e.emit("add.s32", i, i, "1")
	again := e.p()
	e.emit("setp.lt.s32", again, i, imm(k))
	e.emitPred(again, false, "bra", loop)
	if op.Kind2 == cnn.AvgPool {
		scale := e.f()
		e.emit("mov.f32", scale, "0f3F000000") // placeholder 1/k constant
		e.emit("mul.f32", acc, acc, scale)
	}
	e.storeF(ptrs[1], gid, acc)
	e.epilogue(exit)
	g.addLaunch(e.finish(), n, out.Elements(),
		bytesOf(in.Elements())+bytesOf(out.Elements()), nil)
	return nil
}

// lowerGlobalPool reduces the whole spatial extent per channel.
func (g *generator) lowerGlobalPool(n *cnn.Node, op cnn.GlobalPool2D) error {
	in := inShape(n, 0)
	out := n.OutShape()
	k := int64(in.H) * int64(in.W)
	e := g.newEmitter(n, "")
	gid, ptrs, exit := e.prologue(2, out.Elements())
	i := e.r()
	e.emit("mov.u32", i, "0")
	acc := e.f()
	e.emit("mov.f32", acc, "0f00000000")
	loop := e.label("LOOP")
	e.place(loop)
	idx := e.r()
	e.emit("mad.lo.s32", idx, i, imm(int64(in.C)), gid)
	v := e.loadF(ptrs[0], idx)
	if op.Kind2 == cnn.MaxPool {
		e.emit("max.f32", acc, acc, v)
	} else {
		e.emit("add.f32", acc, acc, v)
	}
	e.emit("add.s32", i, i, "1")
	again := e.p()
	e.emit("setp.lt.s32", again, i, imm(k))
	e.emitPred(again, false, "bra", loop)
	if op.Kind2 == cnn.AvgPool {
		inv := e.f()
		e.emit("mov.f32", inv, "0f3F000000")
		e.emit("mul.f32", acc, acc, inv)
	}
	e.storeF(ptrs[1], gid, acc)
	e.epilogue(exit)
	g.addLaunch(e.finish(), n, out.Elements(),
		bytesOf(in.Elements())+bytesOf(out.Elements()), nil)
	return nil
}

// lowerBatchNorm is an elementwise scale-and-shift (inference form).
func (g *generator) lowerBatchNorm(n *cnn.Node) error {
	out := n.OutShape()
	e := g.newEmitter(n, "")
	gid, ptrs, exit := e.prologue(3, out.Elements()) // x, scale/shift, out
	ch := e.r()
	e.emit("rem.s32", ch, gid, imm(int64(out.C)))
	x := e.loadF(ptrs[0], gid)
	scale := e.loadF(ptrs[1], ch)
	shift := e.loadF(ptrs[1], ch)
	y := e.f()
	e.emit("fma.rn.f32", y, x, scale, shift)
	e.storeF(ptrs[2], gid, y)
	e.epilogue(exit)
	g.addLaunch(e.finish(), n, out.Elements(),
		2*bytesOf(out.Elements())+bytesOf(2*int64(out.C)), nil)
	return nil
}

// lowerGroupNorm is batch-norm-like with an extra rsqrt per element
// (inference approximation of the per-group statistics path).
func (g *generator) lowerGroupNorm(n *cnn.Node) error {
	out := n.OutShape()
	e := g.newEmitter(n, "")
	gid, ptrs, exit := e.prologue(3, out.Elements())
	ch := e.r()
	e.emit("rem.s32", ch, gid, imm(int64(out.C)))
	x := e.loadF(ptrs[0], gid)
	varv := e.loadF(ptrs[1], ch)
	inv := e.f()
	e.emit("rsqrt.approx.f32", inv, varv)
	norm := e.f()
	e.emit("mul.f32", norm, x, inv)
	gamma := e.loadF(ptrs[1], ch)
	beta := e.loadF(ptrs[1], ch)
	y := e.f()
	e.emit("fma.rn.f32", y, norm, gamma, beta)
	e.storeF(ptrs[2], gid, y)
	e.epilogue(exit)
	g.addLaunch(e.finish(), n, out.Elements(),
		2*bytesOf(out.Elements())+bytesOf(2*int64(out.C)), nil)
	return nil
}

// lowerActivation generates the elementwise non-linearity. Softmax
// additionally reduces over the channel dimension for its normaliser.
func (g *generator) lowerActivation(n *cnn.Node, op cnn.Activation) error {
	out := n.OutShape()
	e := g.newEmitter(n, op.Fn)
	gid, ptrs, exit := e.prologue(2, out.Elements())
	x := e.loadF(ptrs[0], gid)
	var y string
	switch op.Fn {
	case "softmax":
		// Normaliser loop: sum of exp over the vector.
		i := e.r()
		e.emit("mov.u32", i, "0")
		sum := e.f()
		e.emit("mov.f32", sum, "0f00000000")
		loop := e.label("LOOP")
		e.place(loop)
		v := e.loadF(ptrs[0], i)
		ev := e.f()
		e.emit("ex2.approx.f32", ev, v)
		e.emit("add.f32", sum, sum, ev)
		e.emit("add.s32", i, i, "1")
		again := e.p()
		e.emit("setp.lt.s32", again, i, imm(int64(out.C)))
		e.emitPred(again, false, "bra", loop)
		ex := e.f()
		e.emit("ex2.approx.f32", ex, x)
		rs := e.f()
		e.emit("rcp.approx.f32", rs, sum)
		y = e.f()
		e.emit("mul.f32", y, ex, rs)
	case "sigmoid", "swish":
		neg := e.f()
		e.emit("neg.f32", neg, x)
		ev := e.f()
		e.emit("ex2.approx.f32", ev, neg)
		one := e.f()
		e.emit("mov.f32", one, "0f3F800000")
		den := e.f()
		e.emit("add.f32", den, ev, one)
		sig := e.f()
		e.emit("rcp.approx.f32", sig, den)
		if op.Fn == "swish" {
			y = e.f()
			e.emit("mul.f32", y, x, sig)
		} else {
			y = sig
		}
	default: // relu and friends
		zero := e.f()
		e.emit("mov.f32", zero, "0f00000000")
		y = e.f()
		e.emit("max.f32", y, x, zero)
	}
	e.storeF(ptrs[1], gid, y)
	e.epilogue(exit)
	g.addLaunch(e.finish(), n, out.Elements(), 2*bytesOf(out.Elements()), nil)
	return nil
}

// lowerAdd sums all inputs elementwise.
func (g *generator) lowerAdd(n *cnn.Node) error {
	out := n.OutShape()
	e := g.newEmitter(n, "")
	gid, ptrs, exit := e.prologue(len(n.Inputs)+1, out.Elements())
	acc := e.loadF(ptrs[0], gid)
	for i := 1; i < len(n.Inputs); i++ {
		v := e.loadF(ptrs[i], gid)
		e.emit("add.f32", acc, acc, v)
	}
	e.storeF(ptrs[len(n.Inputs)], gid, acc)
	e.epilogue(exit)
	g.addLaunch(e.finish(), n, out.Elements(),
		int64(len(n.Inputs)+1)*bytesOf(out.Elements()), nil)
	return nil
}

// lowerMultiply multiplies two inputs elementwise, broadcasting a 1x1xC
// gate across the spatial extent when required.
func (g *generator) lowerMultiply(n *cnn.Node) error {
	out := n.OutShape()
	e := g.newEmitter(n, "")
	gid, ptrs, exit := e.prologue(3, out.Elements())
	a := e.loadF(ptrs[0], gid)
	idx := gid
	if inShape(n, 1) != out { // broadcast gate: index by channel
		ch := e.r()
		e.emit("rem.s32", ch, gid, imm(int64(out.C)))
		idx = ch
	}
	bv := e.loadF(ptrs[1], idx)
	y := e.f()
	e.emit("mul.f32", y, a, bv)
	e.storeF(ptrs[2], gid, y)
	e.epilogue(exit)
	g.addLaunch(e.finish(), n, out.Elements(),
		bytesOf(out.Elements())*2+bytesOf(inShape(n, 1).Elements()), nil)
	return nil
}

// lowerConcat emits one strided copy kernel per input (channel packing).
func (g *generator) lowerConcat(n *cnn.Node) error {
	out := n.OutShape()
	offset := int64(0)
	for i := range n.Inputs {
		in := inShape(n, i)
		e := g.newEmitter(n, "copy")
		gid, ptrs, exit := e.prologue(2, in.Elements())
		dst := e.r()
		// dst = gid + spatialIndex*(outC-inC) + offset: one mad + add.
		e.emit("mad.lo.s32", dst, gid, imm(int64(out.C-in.C)+1), imm(offset))
		v := e.loadF(ptrs[0], gid)
		e.storeF(ptrs[1], dst, v)
		e.epilogue(exit)
		g.addLaunch(e.finish(), n, in.Elements(), 2*bytesOf(in.Elements()), nil)
		offset += int64(in.C)
	}
	return nil
}

// lowerCopy emits a plain gather/scatter copy (zero padding and similar
// data movement nodes).
func (g *generator) lowerCopy(n *cnn.Node, suffix string) error {
	in := inShape(n, 0)
	e := g.newEmitter(n, suffix)
	gid, ptrs, exit := e.prologue(2, in.Elements())
	v := e.loadF(ptrs[0], gid)
	e.storeF(ptrs[1], gid, v)
	e.epilogue(exit)
	g.addLaunch(e.finish(), n, in.Elements(),
		bytesOf(in.Elements())+bytesOf(n.OutShape().Elements()), nil)
	return nil
}
