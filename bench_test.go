// Benchmark harness regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus the ablation
// studies called out in DESIGN.md. Custom metrics (MAPE, speed-ups,
// slice fractions) are attached to the benchmark results via
// b.ReportMetric so a single -bench run reproduces the numbers.
package cnnperf_test

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"cnnperf"
	"cnnperf/internal/core"
	"cnnperf/internal/dca"
	"cnnperf/internal/experiments"
	"cnnperf/internal/gpu"
	"cnnperf/internal/gpusim"
	"cnnperf/internal/mlearn"
	"cnnperf/internal/mlearn/metrics"
	"cnnperf/internal/ptx"
	"cnnperf/internal/ptxgen"
	"cnnperf/internal/zoo"
)

// sharedSuite lazily builds the phase-1 dataset once for all benchmarks.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func getSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(core.DefaultConfig())
	})
	if suiteErr != nil {
		b.Fatalf("building suite: %v", suiteErr)
	}
	return suite
}

// BenchmarkTableI_StaticAnalysis regenerates Table I: the Static Analyzer
// over all 31 CNNs of the paper.
func BenchmarkTableI_StaticAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var params int64
		for _, name := range zoo.TableIOrder {
			m := zoo.MustBuild(name)
			params += m.TrainableParams()
		}
		if params <= 0 {
			b.Fatal("no parameters counted")
		}
	}
}

// BenchmarkTableII_Regressors regenerates Table II: train and score the
// five candidate regressors on the 70/30 split. The reported mape_dt /
// mape_lr metrics are the table's headline numbers.
func BenchmarkTableII_Regressors(b *testing.B) {
	s := getSuite(b)
	var dt, lr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evals, _, err := s.TableII()
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range evals {
			switch e.Name {
			case "decision_tree":
				dt = e.MAPE
			case "linear_regression":
				lr = e.MAPE
			}
		}
	}
	b.ReportMetric(dt, "mape_dt_%")
	b.ReportMetric(lr, "mape_lr_%")
}

// BenchmarkTableIII_FeatureImportance regenerates Table III: the final
// Decision Tree's impurity importances. The reported metric is the
// memory-bandwidth importance (paper: 0.726).
func BenchmarkTableIII_FeatureImportance(b *testing.B) {
	s := getSuite(b)
	var bw float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imps, _, err := s.TableIII()
		if err != nil {
			b.Fatal(err)
		}
		for _, fi := range imps {
			if fi.Feature == "mem_bandwidth_gbs" {
				bw = fi.Importance
			}
		}
	}
	b.ReportMetric(bw, "importance_membw")
}

// BenchmarkFig4_PredictedVsMeasured regenerates Fig. 4: predicted vs
// original IPC for the held-out CNNs on the GTX 1080 Ti across the four
// non-linear regressors. The reported metric is the Decision Tree panel's
// MAPE (paper: 5.73 % overall).
func BenchmarkFig4_PredictedVsMeasured(b *testing.B) {
	s := getSuite(b)
	var dtMape float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, _, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range series {
			if sr.Regressor == "decision_tree" {
				dtMape = sr.MAPE
			}
		}
	}
	b.ReportMetric(dtMape, "fig4_dt_mape_%")
}

// BenchmarkTableIV_DSESpeedup regenerates Table IV: the DSE timing
// comparison (naive profiling on n GPUs vs one DCA plus n predictions).
// The reported metric is the mean speed-up at n=7.
func BenchmarkTableIV_DSESpeedup(b *testing.B) {
	s := getSuite(b)
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := s.TableIV()
		if err != nil {
			b.Fatal(err)
		}
		speedup = 0
		for _, r := range rows {
			speedup += r.Speedup7
		}
		speedup /= float64(len(rows))
	}
	b.ReportMetric(speedup, "speedup_n7_x")
}

// BenchmarkAblationSliceVsFull quantifies the paper's slicing trick: the
// control-slice interpreter versus interpreting every instruction.
func BenchmarkAblationSliceVsFull(b *testing.B) {
	m := zoo.MustBuild("inceptionv3")
	prog, err := ptxgen.Compile(m, ptxgen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sliced", func(b *testing.B) {
		var frac float64
		for i := 0; i < b.N; i++ {
			rep, err := dca.AnalyzeProgram(prog, dca.Options{})
			if err != nil {
				b.Fatal(err)
			}
			frac = rep.MeanSliceFraction
		}
		b.ReportMetric(100*frac, "slice_%")
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dca.AnalyzeProgram(prog, dca.Options{Exec: dca.ExecOptions{Full: true}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationConvLowering compares the two convolution lowerings
// (implicit GEMM vs explicit im2col+GEMM) end to end.
func BenchmarkAblationConvLowering(b *testing.B) {
	m := zoo.MustBuild("vgg16")
	for name, opt := range map[string]ptxgen.ConvLowering{
		"implicit_gemm": ptxgen.ImplicitGEMM,
		"im2col_gemm":   ptxgen.Im2colGEMM,
		"tiled_gemm":    ptxgen.TiledGEMM,
	} {
		opt := opt
		b.Run(name, func(b *testing.B) {
			var executed int64
			for i := 0; i < b.N; i++ {
				prog, err := ptxgen.Compile(m, ptxgen.Options{Lowering: opt})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := dca.AnalyzeProgram(prog, dca.Options{})
				if err != nil {
					b.Fatal(err)
				}
				executed = rep.Executed
			}
			b.ReportMetric(float64(executed)/1e9, "Ginstr")
		})
	}
}

// BenchmarkAblationKernelFusion quantifies the conv+BN+ReLU fusion: the
// executed-instruction total and simulated runtime with and without
// elementwise fusion.
func BenchmarkAblationKernelFusion(b *testing.B) {
	m := zoo.MustBuild("resnet50v2")
	spec := gpu.MustLookup("gtx1080ti")
	for name, fuse := range map[string]bool{"unfused": false, "fused": true} {
		fuse := fuse
		b.Run(name, func(b *testing.B) {
			var runtime float64
			var launches int
			for i := 0; i < b.N; i++ {
				prog, err := ptxgen.Compile(m, ptxgen.Options{Batch: 16, FuseElementwise: fuse})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := dca.AnalyzeProgram(prog, dca.Options{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := gpusim.Simulate(rep, spec, gpusim.Config{NoisePct: -1})
				if err != nil {
					b.Fatal(err)
				}
				runtime = res.RuntimeSec
				launches = len(prog.Launches)
			}
			b.ReportMetric(1000*runtime, "runtime_ms")
			b.ReportMetric(float64(launches), "kernels")
		})
	}
}

// BenchmarkAblationTreeDepth sweeps the Decision Tree depth limit and
// reports the evaluation MAPE per depth — the pruning ablation from
// DESIGN.md.
func BenchmarkAblationTreeDepth(b *testing.B) {
	s := getSuite(b)
	trX, trY := s.Train.XY()
	evX, evY := s.Eval.XY()
	for _, depth := range []int{2, 4, 8, 0} {
		depth := depth
		name := "unlimited"
		if depth > 0 {
			name = string(rune('0' + depth))
		}
		b.Run("depth_"+name, func(b *testing.B) {
			var mape float64
			for i := 0; i < b.N; i++ {
				tree := &mlearn.DecisionTree{MaxDepth: depth, MinLeaf: 1, MinSplit: 2}
				if err := tree.Fit(trX, trY); err != nil {
					b.Fatal(err)
				}
				pred := mlearn.PredictAll(tree, evX)
				m, err := metrics.MAPE(evY, pred)
				if err != nil {
					b.Fatal(err)
				}
				mape = m
			}
			b.ReportMetric(mape, "mape_%")
		})
	}
}

// BenchmarkAblationFeatureSet drops the GPU features and measures the
// single-platform degradation — why cross-platform prediction needs
// hardware predictors (paper, Section V).
func BenchmarkAblationFeatureSet(b *testing.B) {
	s := getSuite(b)
	trX, trY := s.Train.XY()
	evX, evY := s.Eval.XY()
	run := func(b *testing.B, width int) float64 {
		var mape float64
		for i := 0; i < b.N; i++ {
			cut := func(rows [][]float64) [][]float64 {
				out := make([][]float64, len(rows))
				for j, r := range rows {
					out[j] = r[:width]
				}
				return out
			}
			tree := mlearn.NewDecisionTree()
			if err := tree.Fit(cut(trX), trY); err != nil {
				b.Fatal(err)
			}
			pred := mlearn.PredictAll(tree, cut(evX))
			m, err := metrics.MAPE(evY, pred)
			if err != nil {
				b.Fatal(err)
			}
			mape = m
		}
		return mape
	}
	b.Run("cnn_features_only", func(b *testing.B) {
		b.ReportMetric(run(b, 2), "mape_%")
	})
	b.Run("cnn_plus_gpu_features", func(b *testing.B) {
		b.ReportMetric(run(b, len(core.FeatureNames)), "mape_%")
	})
}

// BenchmarkPipelinePerModel measures the per-CNN analysis cost (compile +
// slice + abstract execution) for representative networks.
func BenchmarkPipelinePerModel(b *testing.B) {
	for _, name := range []string{"alexnet", "mobilenetv2", "resnet50v2", "inceptionv3", "efficientnetb3"} {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.AnalyzeCNN(name, core.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGPUSimulator measures one full-model timing simulation.
func BenchmarkGPUSimulator(b *testing.B) {
	a, err := core.AnalyzeCNN("resnet50v2", core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	spec := gpu.MustLookup("gtx1080ti")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gpusim.Simulate(a.Report, spec, gpusim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPTXRoundTrip measures printing and parsing a full generated
// module.
func BenchmarkPTXRoundTrip(b *testing.B) {
	m := zoo.MustBuild("alexnet")
	prog, err := ptxgen.Compile(m, ptxgen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	text := ptx.Print(prog.Module)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod, err := ptx.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		if len(mod.Kernels) == 0 {
			b.Fatal("no kernels")
		}
	}
}

// BenchmarkEstimatorPredict measures a single prediction (the paper's
// t_pm, reported in nanoseconds per op).
func BenchmarkEstimatorPredict(b *testing.B) {
	s := getSuite(b)
	est, err := core.TrainEstimator(s.Train, mlearn.NewDecisionTree())
	if err != nil {
		b.Fatal(err)
	}
	a := s.Analyses["vgg16"]
	spec := gpu.MustLookup("t4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Predict(a, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetBuild measures the full phase-1 dataset creation at
// two operating points: the sequential, uncached seed pipeline
// (workers=1) and the concurrent, memoized one (workers=GOMAXPROCS with
// a fresh analysis cache per build). The model set shares many conv /
// GEMM kernel shapes across depths, so the cache carries the speedup
// even on a single core; the worker pool adds more on multi-core
// runners. The sub-benchmarks first assert the two configurations
// produce byte-identical CSV, and the cached one reports its hit rate.
func BenchmarkDatasetBuild(b *testing.B) {
	models := []string{"resnet50v2", "resnet101v2", "resnet152v2"}
	wantRows := len(models) * len(cnnperf.TrainingGPUs())

	build := func(workers int, cache *cnnperf.AnalysisCache) (*cnnperf.Dataset, error) {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		cfg.Cache = cache
		ds, _, err := cnnperf.BuildDataset(models, cnnperf.TrainingGPUs(), cfg)
		return ds, err
	}
	csvOf := func(ds *cnnperf.Dataset) string {
		var sb strings.Builder
		if err := ds.WriteCSV(&sb); err != nil {
			b.Fatal(err)
		}
		return sb.String()
	}

	// Equivalence gate: both operating points must emit identical bytes.
	seq, err := build(1, nil)
	if err != nil {
		b.Fatal(err)
	}
	par, err := build(runtime.GOMAXPROCS(0), cnnperf.NewAnalysisCache(0))
	if err != nil {
		b.Fatal(err)
	}
	if a, bb := csvOf(seq), csvOf(par); a != bb {
		b.Fatalf("parallel+cached dataset differs from sequential baseline:\n%s\nvs\n%s", a, bb)
	}

	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, err := build(1, nil)
			if err != nil {
				b.Fatal(err)
			}
			if ds.Len() != wantRows {
				b.Fatal("unexpected dataset size")
			}
		}
	})
	b.Run("workers=max", func(b *testing.B) {
		var stats cnnperf.AnalysisCacheStats
		for i := 0; i < b.N; i++ {
			cache := cnnperf.NewAnalysisCache(0)
			ds, err := build(runtime.GOMAXPROCS(0), cache)
			if err != nil {
				b.Fatal(err)
			}
			if ds.Len() != wantRows {
				b.Fatal("unexpected dataset size")
			}
			stats = cache.Stats()
		}
		if stats.Hits == 0 {
			b.Fatal("analysis cache reported zero hits")
		}
		b.ReportMetric(100*stats.HitRate(), "cache_hit_%")
	})
}
