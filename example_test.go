package cnnperf_test

import (
	"fmt"

	"cnnperf"
)

// ExampleAnalyzeCNN shows the phase-1 analysis of one network: the
// Static Analyzer's trainable-parameter count and the Dynamic Code
// Analysis' executed-instruction total.
func ExampleAnalyzeCNN() {
	a, err := cnnperf.AnalyzeCNN("mobilenet", cnnperf.Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("trainable parameters: %d\n", a.Summary.TrainableParams)
	fmt.Printf("kernels: %d\n", len(a.Report.Kernels))
	fmt.Printf("executed instructions: %d\n", a.Report.Executed)
	// Output:
	// trainable parameters: 4231976
	// kernels: 84
	// executed instructions: 7724821024
}

// ExampleAnalyze shows the Static Analyzer on a custom graph built with
// the public ops.
func ExampleAnalyze() {
	b, x := cnnperf.NewModel("demo", cnnperf.Shape{H: 32, W: 32, C: 3})
	x = b.Add(cnnperf.Conv(8, 3, 1, cnnperf.Same), x)
	x = b.Add(cnnperf.ReLU(), x)
	x = b.Add(cnnperf.GlobalAvgPool(), x)
	x = b.Add(cnnperf.FC(10), x)
	m, err := b.Build(x)
	if err != nil {
		fmt.Println(err)
		return
	}
	s, err := cnnperf.Analyze(m)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("layers=%d params=%d\n", s.Layers, s.TrainableParams)
	// Output:
	// layers=2 params=314
}

// ExampleGPU shows the hardware feature vector the estimator consumes.
func ExampleGPU() {
	spec, err := cnnperf.GPU("gtx1080ti")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s: %d CUDA cores, %.0f GB/s\n", spec.Name, spec.CUDACores, spec.MemBandwidthGBs)
	// Output:
	// GTX 1080 Ti: 3584 CUDA cores, 484 GB/s
}

// ExampleDSETime shows the Section V timing model: one dynamic code
// analysis plus n predictions versus n profiling sessions.
func ExampleDSETime() {
	d := cnnperf.DSETime{N: 7, TDCASec: 24.8, TPMSec: 11, TPSec: 663}
	fmt.Printf("naive: %.1f s, ours: %.1f s, speed-up: %.1fx\n",
		d.Naive(), d.Estimated(), d.Speedup())
	// Output:
	// naive: 4641.0 s, ours: 101.8 s, speed-up: 45.6x
}
